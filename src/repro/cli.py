"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``                       -- version + registry overview
* ``datasets``                   -- the Table 4 dataset inventory
* ``footprint [--dataset D]``    -- Figure 5's ratios for one dataset
* ``workload [--dataset D] [--workload W] [--ops N]``
                                 -- run a workload across all systems
* ``query --file PATH "ZIPQL"``  -- compress a graph file and query it
* ``verify-store PATH``          -- offline store-integrity audit
                                    (manifest, CRCs, WAL tail; non-zero
                                    exit on any issue)
* ``ec-encode --file PATH --ec-root DIR --num-servers N``
                                 -- erasure-code a graph's snapshot into
                                    per-server fragment directories
* ``serve-shard (--file PATH | --store-root DIR [--load-mode mmap])
  --server-id N [--port P] [--ec-dir DIR]``
                                 -- run one shard-server process, either
                                    compressing a graph file or serving
                                    a saved snapshot (optionally
                                    memory-mapped, zero-copy)
* ``serve-master --file PATH --shard ID=HOST:PORT ...``
                                 -- run the client-facing master
* ``serve-gateway --master-port P``
                                 -- run the admission-controlled gateway
                                    in front of a master

The graph file format accepted by ``query`` and the ``serve-*``
commands is the canonical text form used for raw-size accounting:
``N <id> <pid>=<value>;...`` node lines and ``E <src> <dst> <type>
<ts>`` edge lines.

The serving commands print one ``LISTENING <host> <port>`` line on
stdout once the socket is bound (``--port 0`` picks a free port), then
serve until killed -- the contract process supervisors and the e2e
tests rely on.  Every server process must be seeded from the *same*
graph file: replicas start identical and stay aligned through the
master's LSN-stamped ``apply_write`` replication stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import repro
from repro.bench.datasets import DATASETS, build_dataset, memory_budget_bytes
from repro.bench.harness import run_mixed_workload
from repro.bench.memory_model import CostModel
from repro.bench.systems import SYSTEMS, ZipGSystem, build_system
from repro.core import GraphData
from repro.query import QueryEngine
from repro.workloads import GraphSearchWorkload, LinkBenchWorkload, TAOWorkload

_EXTRA_IDS = (
    ["city", "interest"] + [f"attr{i:02d}" for i in range(38)] + ["payload", "data"]
)


def _cmd_info(_args) -> int:
    print(f"repro-zipg {repro.__version__}")
    print(f"systems:  {', '.join(SYSTEMS)}")
    print(f"datasets: {', '.join(DATASETS)}")
    print("workloads: tao, linkbench, graph-search")
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'dataset':<20}{'nodes':>8}{'edges':>8}{'raw MB':>10}{'budget MB':>11}")
    for name in DATASETS:
        graph = build_dataset(name)
        budget = memory_budget_bytes(name, graph)
        print(f"{name:<20}{graph.num_nodes:>8}{graph.num_edges:>8}"
              f"{graph.on_disk_size_bytes() / 1e6:>10.2f}{budget / 1e6:>11.2f}")
    return 0


def _cmd_footprint(args) -> int:
    graph = build_dataset(args.dataset)
    raw = graph.on_disk_size_bytes()
    print(f"{args.dataset}: raw {raw / 1e6:.2f} MB")
    for name in ("neo4j", "titan", "titan-compressed", "zipg"):
        system = build_system(name, graph, extra_property_ids=_EXTRA_IDS)
        footprint = system.storage_footprint_bytes()
        print(f"  {name:<18} {footprint / 1e6:8.2f} MB  ({footprint / raw:5.2f}x raw)")
    return 0


def _make_workload(name: str, graph, seed: int):
    if name == "tao":
        return TAOWorkload(graph, seed=seed)
    if name == "linkbench":
        return LinkBenchWorkload(graph, seed=seed)
    if name == "graph-search":
        return GraphSearchWorkload(graph, seed=seed)
    raise SystemExit(f"unknown workload {name!r}")


def _cmd_workload(args) -> int:
    graph = build_dataset(args.dataset)
    budget = memory_budget_bytes(args.dataset, graph)
    cost_model = CostModel()
    print(f"{args.workload} x {args.ops} ops on {args.dataset} "
          f"(budget {budget / 1e6:.2f} MB):")
    for name in SYSTEMS:
        system = build_system(name, graph, extra_property_ids=_EXTRA_IDS)
        workload = _make_workload(args.workload, graph, args.seed)
        result = run_mixed_workload(
            system, workload.operations(args.ops), cost_model, budget,
            workload_name=args.workload,
        )
        print(" ", result.row())
    return 0


def _load_graph_file(path: str) -> GraphData:
    graph = GraphData()
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if fields[0] == "N":
                properties = {}
                for pair in fields[2:]:
                    for item in pair.split(";"):
                        if item:
                            key, _, value = item.partition("=")
                            properties[key] = value
                graph.add_node(int(fields[1]), properties)
            elif fields[0] == "E":
                timestamp = int(fields[4]) if len(fields) > 4 else 0
                edge_type = int(fields[3]) if len(fields) > 3 else 0
                graph.add_edge(int(fields[1]), int(fields[2]), edge_type, timestamp)
            else:
                raise SystemExit(f"{path}:{line_number}: unknown record {fields[0]!r}")
    return graph


def _cmd_experiments(args) -> int:
    from repro.bench.report import run_report

    run_report(datasets=args.datasets or None, ops=args.ops)
    return 0


def _cmd_check(args) -> int:
    from repro.analysis.__main__ import main as analysis_main

    forwarded = list(args.paths)
    if args.json:
        forwarded.append("--json")
    if args.format:
        forwarded.extend(["--format", args.format])
    if args.rules:
        forwarded.extend(["--rules", args.rules])
    if args.changed is not None:
        forwarded.extend(["--changed", args.changed])
    for trace_path in args.lock_trace:
        forwarded.extend(["--lock-trace", trace_path])
    if args.cache:
        forwarded.extend(["--cache", args.cache])
    return analysis_main(forwarded)


def _cmd_stats(args) -> int:
    """Run a traced workload on ZipG and dump the observability state."""
    from repro import obs

    graph = build_dataset(args.dataset)
    system = build_system(
        "zipg", graph, num_shards=args.shards, extra_property_ids=_EXTRA_IDS
    )
    workload = _make_workload(args.workload, graph, args.seed)
    budget = memory_budget_bytes(args.dataset, graph)
    cache = None
    if args.cache_budget:
        cache = system.store.enable_cache(args.cache_budget)

    obs.reset()
    obs.enable_tracing(args.sample_rate)
    try:
        run_mixed_workload(
            system, workload.operations(args.ops), CostModel(), budget,
            workload_name=args.workload,
        )
    finally:
        obs.disable_tracing()

    if args.format == "prometheus":
        print(obs.prometheus_text(obs.get_registry()), end="")
    elif args.format == "json":
        print(obs.json_snapshot(obs.get_registry(), obs.get_tracer(), indent=2))
    else:
        tracer = obs.get_tracer()
        print(f"{args.workload} x {args.ops} ops on {args.dataset} "
              f"(sample rate {args.sample_rate}):")
        print(f"{'layer':<14}{'spans':>10}{'time ms':>12}")
        for layer, values in sorted(tracer.layer_breakdown().items()):
            print(f"{layer:<14}{values['spans']:>10.0f}"
                  f"{values['time_us'] / 1e3:>12.2f}")
        print(f"\n{'span':<32}{'count':>8}{'p50 us':>10}{'p95 us':>10}"
              f"{'p99 us':>10}")
        for name, summary in sorted(tracer.span_summary().items()):
            print(f"{name:<32}{summary['count']:>8.0f}{summary['p50']:>10.1f}"
                  f"{summary['p95']:>10.1f}{summary['p99']:>10.1f}")
        storage = system.store.snapshot_metrics()["storage"]
        print(f"\nstorage: load_mode={storage['load_mode']} "
              f"encoding={storage['encoding']} "
              f"mmap_bytes={storage['mmap_bytes']:.0f}")
        if cache is not None:
            snap = cache.stats()
            print(f"\nhot-set cache (budget {snap['budget_bytes']} B):")
            print(f"  zipg_cache_hits_total      {snap['hits']}")
            print(f"  zipg_cache_misses_total    {snap['misses']}")
            print(f"  zipg_cache_evictions_total {snap['evictions']}")
            print(f"  zipg_cache_bytes_total     {snap['bytes']}")
            print(f"  hit ratio                  {snap['hit_ratio']:.3f}")
    return 0


def _cmd_query(args) -> int:
    graph = _load_graph_file(args.file)
    system = ZipGSystem.load(graph, num_shards=args.shards, alpha=args.alpha)
    engine = QueryEngine(system, graph.node_ids())
    result = engine.execute(args.zipql)
    print("\t".join(result.columns))
    for row in result:
        print("\t".join(str(row[column]) for column in result.columns))
    print(f"({len(result)} rows)", file=sys.stderr)
    return 0


def _cmd_verify_store(args) -> int:
    from repro.core.persistence import verify_store

    report = verify_store(args.root, ec_root=args.ec_root,
                          chunk_bytes=args.chunk_bytes)
    if args.json:
        import json

        print(json.dumps(report.to_payload(), indent=2))
    else:
        checked = f"{report.files_checked} snapshot file(s)"
        if args.ec_root:
            checked += f", {report.fragments_checked} fragment(s)"
        status = "OK" if report.ok else f"{len(report.issues)} ISSUE(S)"
        print(f"{args.root}: {status} "
              f"(generation {report.generation}, {checked}, "
              f"{report.wal_records} WAL record(s))")
        for issue in report.issues:
            print(f"  [{issue.kind}] {issue.detail}")
    return 0 if report.ok else 1


def _cmd_ec_encode(args) -> int:
    """Erasure-code a graph's committed snapshot for an ec cluster.

    Builds the store the same deterministic way the ``serve-*``
    commands do, snapshots it under ``<ec-root>/snapshot``, and splits
    every snapshot file into ``k+m`` placed fragments under
    ``<ec-root>/server-<id>/``."""
    import os

    from repro.core.persistence import save_store
    from repro.ec import ErasureCodedSnapshots

    graph = _load_graph_file(args.file)
    store = ZipGSystem.load(
        graph, num_shards=args.shards, alpha=args.alpha
    ).store
    snapshot_root = os.path.join(args.ec_root, "snapshot")
    save_store(store, snapshot_root)
    snaps = ErasureCodedSnapshots.encode_snapshot(
        snapshot_root, args.ec_root, num_servers=args.num_servers,
        k=args.k, m=args.m,
    )
    manifest = snaps.manifest
    ratio = (manifest.storage_bytes() / manifest.data_bytes()
             if manifest.data_bytes() else 0.0)
    print(f"ENCODED {args.ec_root} generation={manifest.generation} "
          f"k={manifest.k} m={manifest.m} files={len(manifest.files)} "
          f"fragment_bytes={manifest.storage_bytes()} "
          f"overhead={ratio:.3f}x", flush=True)
    return 0


def _parse_shard_address(text: str) -> tuple:
    """``"2=127.0.0.1:7002"`` -> ``(2, ("127.0.0.1", 7002))``."""
    server, eq, hostport = text.partition("=")
    host, colon, port = hostport.rpartition(":")
    if not eq or not colon or not host:
        raise SystemExit(
            f"bad --shard {text!r} (expected ID=HOST:PORT)"
        )
    try:
        return int(server), (host, int(port))
    except ValueError:
        raise SystemExit(
            f"bad --shard {text!r} (expected ID=HOST:PORT)"
        ) from None


def _serve(server) -> int:
    """Announce the bound address, then serve until interrupted."""
    host, port = server.address
    print(f"LISTENING {host} {port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass  # clean shutdown on ^C
    finally:
        server.stop()
    return 0


def _cmd_serve_shard(args) -> int:
    from repro.server.shard_server import ShardServer

    if (args.file is None) == (args.store_root is None):
        raise SystemExit("serve-shard needs exactly one of --file "
                         "(compress a graph) or --store-root (serve a "
                         "saved snapshot)")
    if args.store_root is not None:
        from repro.core.persistence import load_store

        store = load_store(args.store_root, mode=args.load_mode)
        print(f"LOADED {args.store_root} mode={store.load_mode} "
              f"encoding={store.encoding} shards={store.num_shards} "
              f"mmap_bytes={store.mapped_bytes}", flush=True)
    else:
        graph = _load_graph_file(args.file)
        store = ZipGSystem.load(
            graph, num_shards=args.shards, alpha=args.alpha
        ).store
    if args.ec_dir:
        from repro.ec import FragmentStore

        # This process answers ec_fetch_fragment / ec_store_fragment
        # for its own server id only; fragments for other servers live
        # in other processes.
        store.ec_fragment_stores = {
            args.server_id: FragmentStore(args.ec_dir)
        }
    server = ShardServer(
        store, server_id=args.server_id, host=args.host, port=args.port,
        max_workers=args.workers,
    )
    return _serve(server)


def _cmd_serve_master(args) -> int:
    from repro.cluster.replication import ReplicatedZipGCluster
    from repro.server.master import MasterServer
    from repro.server.transport import SocketTransport

    graph = _load_graph_file(args.file)
    addresses = dict(_parse_shard_address(item) for item in args.shard)
    num_servers = max(addresses) + 1
    missing = [s for s in range(num_servers) if s not in addresses]
    if missing:
        raise SystemExit(f"missing --shard entries for servers {missing}")
    store = ZipGSystem.load(
        graph, num_shards=args.shards, alpha=args.alpha
    ).store
    ec_snapshots = None
    if args.placement == "ec":
        from repro.ec import ErasureCodedSnapshots

        if not args.ec_root:
            raise SystemExit("--placement ec requires --ec-root "
                             "(see `repro ec-encode`)")
        ec_snapshots = ErasureCodedSnapshots(args.ec_root)
    cluster = ReplicatedZipGCluster(
        store, num_servers,
        replication_factor=min(args.replication, num_servers),
        retries=args.retries, backoff_s=args.backoff_s,
        deadline_s=args.deadline_s,
        placement=args.placement, ec_snapshots=ec_snapshots,
        rebuild_rate_bytes_s=args.rebuild_rate_bytes_s,
    )
    cluster.transport = SocketTransport(addresses, timeout_s=args.timeout_s)
    server = MasterServer(cluster, host=args.host, port=args.port,
                          max_workers=args.workers)
    return _serve(server)


def _cmd_serve_gateway(args) -> int:
    from repro.gateway import GatewayConfig, GatewayServer
    from repro.server.client import ZipGClient

    backend = ZipGClient(args.master_host, args.master_port,
                         timeout_s=args.timeout_s)
    config = GatewayConfig(
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        queue_depth=args.queue_depth,
        shed_threshold=args.shed_threshold,
        dispatchers=args.dispatchers,
    )
    server = GatewayServer(backend, config, host=args.host, port=args.port)
    try:
        return _serve(server)
    finally:
        backend.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ZipG reproduction command line"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="version and registry overview")
    commands.add_parser("datasets", help="Table 4 dataset inventory")

    footprint = commands.add_parser("footprint", help="Figure 5 ratios")
    footprint.add_argument("--dataset", default="orkut", choices=list(DATASETS))

    workload = commands.add_parser("workload", help="run a workload on all systems")
    workload.add_argument("--dataset", default="orkut", choices=list(DATASETS))
    workload.add_argument("--workload", default="tao",
                          choices=["tao", "linkbench", "graph-search"])
    workload.add_argument("--ops", type=int, default=200)
    workload.add_argument("--seed", type=int, default=0)

    experiments = commands.add_parser(
        "experiments", help="compact end-to-end evaluation report"
    )
    experiments.add_argument("--datasets", nargs="*", choices=list(DATASETS))
    experiments.add_argument("--ops", type=int, default=150)

    check = commands.add_parser(
        "check", help="run the repo-specific static checker (repro.analysis)"
    )
    check.add_argument("paths", nargs="*", default=["src/repro"],
                       help="files or directories to scan")
    check.add_argument("--json", action="store_true",
                       help="emit findings as JSON")
    check.add_argument("--format", choices=["text", "json", "sarif"],
                       help="output format (default: text)")
    check.add_argument("--rules", help="comma-separated rule ids to run")
    check.add_argument("--changed", nargs="?", const="HEAD", metavar="BASE",
                       help="scan only files changed vs the given git "
                            "revision (default: HEAD)")
    check.add_argument("--lock-trace", action="append", default=[],
                       metavar="PATH",
                       help="runtime lock-order trace for DEADLOCK001; "
                            "repeatable")
    check.add_argument("--cache", metavar="PATH",
                       help="parsed-module scan cache file")

    stats = commands.add_parser(
        "stats", help="run a traced workload and dump metrics/spans"
    )
    stats.add_argument("--dataset", default="orkut", choices=list(DATASETS))
    stats.add_argument("--workload", default="tao",
                       choices=["tao", "linkbench", "graph-search"])
    stats.add_argument("--ops", type=int, default=200)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--shards", type=int, default=4)
    stats.add_argument("--sample-rate", type=float, default=1.0,
                       help="trace sampling rate in (0, 1]")
    stats.add_argument("--cache-budget", type=int, default=0,
                       help="enable the hot-set cache with this byte "
                            "budget (0 = cache off)")
    stats.add_argument("--format", default="summary",
                       choices=["summary", "prometheus", "json"])

    query = commands.add_parser("query", help="compress a graph file and run ZipQL")
    query.add_argument("--file", required=True, help="graph file (N/E lines)")
    query.add_argument("--shards", type=int, default=2)
    query.add_argument("--alpha", type=int, default=16)
    query.add_argument("zipql", help="the ZipQL query text")

    verify_store = commands.add_parser(
        "verify-store", help="offline store-integrity audit"
    )
    verify_store.add_argument("root", help="store root to audit")
    verify_store.add_argument("--ec-root", default=None,
                              help="also verify the erasure-coding "
                                   "manifest and fragments under this "
                                   "directory")
    verify_store.add_argument("--json", action="store_true",
                              help="emit the typed report as JSON")
    verify_store.add_argument("--chunk-bytes", type=int, default=1 << 20,
                              help="streaming CRC chunk size; the audit "
                                   "never holds more than this per file, "
                                   "so larger-than-RAM stores verify fine")

    ec_encode = commands.add_parser(
        "ec-encode", help="erasure-code a graph's snapshot into placed "
                          "fragments"
    )
    ec_encode.add_argument("--file", required=True,
                           help="graph file (N/E lines)")
    ec_encode.add_argument("--ec-root", required=True,
                           help="output directory (snapshot/, server-*/ "
                                "and ec-manifest.json land here)")
    ec_encode.add_argument("--num-servers", type=int, required=True,
                           help="servers to spread fragments across")
    ec_encode.add_argument("--k", type=int, default=4,
                           help="data fragments per file")
    ec_encode.add_argument("--m", type=int, default=2,
                           help="parity fragments per file")
    ec_encode.add_argument("--shards", type=int, default=2)
    ec_encode.add_argument("--alpha", type=int, default=16)

    serve_shard = commands.add_parser(
        "serve-shard", help="run one shard-server process"
    )
    serve_shard.add_argument("--file", default=None,
                             help="graph file (N/E lines) to compress "
                                  "at startup (exclusive with "
                                  "--store-root)")
    serve_shard.add_argument("--store-root", default=None,
                             help="saved store root to serve instead of "
                                  "compressing --file (see save_store)")
    serve_shard.add_argument("--load-mode", default="eager",
                             choices=["eager", "mmap"],
                             help="with --store-root: read shard files "
                                  "into memory (eager) or memory-map "
                                  "them zero-copy (mmap)")
    serve_shard.add_argument("--server-id", type=int, required=True,
                             help="this server's cluster id")
    serve_shard.add_argument("--host", default="127.0.0.1")
    serve_shard.add_argument("--port", type=int, default=0,
                             help="0 picks a free port (see LISTENING line)")
    serve_shard.add_argument("--shards", type=int, default=2)
    serve_shard.add_argument("--alpha", type=int, default=16)
    serve_shard.add_argument("--workers", type=int, default=8)
    serve_shard.add_argument("--ec-dir", default=None,
                             help="this server's erasure-coded fragment "
                                  "directory (from `repro ec-encode`; "
                                  "enables the ec_* fragment RPCs)")

    serve_master = commands.add_parser(
        "serve-master", help="run the client-facing master process"
    )
    serve_master.add_argument("--file", required=True,
                              help="graph file (N/E lines)")
    serve_master.add_argument("--shard", action="append", required=True,
                              metavar="ID=HOST:PORT",
                              help="one shard-server address (repeatable; "
                                   "ids must cover 0..N-1)")
    serve_master.add_argument("--host", default="127.0.0.1")
    serve_master.add_argument("--port", type=int, default=0,
                              help="0 picks a free port (see LISTENING line)")
    serve_master.add_argument("--shards", type=int, default=2)
    serve_master.add_argument("--alpha", type=int, default=16)
    serve_master.add_argument("--workers", type=int, default=8)
    serve_master.add_argument("--replication", type=int, default=2,
                              help="replicas per shard (capped at the "
                                   "server count)")
    serve_master.add_argument("--retries", type=int, default=1)
    serve_master.add_argument("--backoff-s", type=float, default=0.0)
    serve_master.add_argument("--deadline-s", type=float, default=None)
    serve_master.add_argument("--timeout-s", type=float, default=30.0,
                              help="per-connection socket timeout to shards")
    serve_master.add_argument("--placement", default="replication",
                              choices=["replication", "ec"],
                              help="fault-tolerance scheme: whole-shard "
                                   "replicas or erasure-coded fragments")
    serve_master.add_argument("--ec-root", default=None,
                              help="erasure-coding root holding "
                                   "ec-manifest.json (required with "
                                   "--placement ec)")
    serve_master.add_argument("--rebuild-rate-bytes-s", type=float,
                              default=None,
                              help="throttle for background fragment "
                                   "rebuilds (default: unthrottled)")

    serve_gateway = commands.add_parser(
        "serve-gateway", help="run the admission-controlled query gateway"
    )
    serve_gateway.add_argument("--master-host", default="127.0.0.1",
                               help="the master server to front")
    serve_gateway.add_argument("--master-port", type=int, required=True)
    serve_gateway.add_argument("--host", default="127.0.0.1")
    serve_gateway.add_argument("--port", type=int, default=0,
                               help="0 picks a free port (see LISTENING line)")
    serve_gateway.add_argument("--tenant-rate", type=float, default=500.0,
                               help="sustained per-tenant admissions/second")
    serve_gateway.add_argument("--tenant-burst", type=float, default=100.0,
                               help="per-tenant token-bucket capacity")
    serve_gateway.add_argument("--queue-depth", type=int, default=64,
                               help="per-tenant queue bound")
    serve_gateway.add_argument("--shed-threshold", type=float, default=0.75,
                               help="queue fraction past which sheddable "
                                    "reads degrade to partial results")
    serve_gateway.add_argument("--dispatchers", type=int, default=8,
                               help="dispatcher coroutines draining queues")
    serve_gateway.add_argument("--timeout-s", type=float, default=30.0,
                               help="per-connection socket timeout to the "
                                    "master")

    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "datasets": _cmd_datasets,
        "footprint": _cmd_footprint,
        "workload": _cmd_workload,
        "experiments": _cmd_experiments,
        "check": _cmd_check,
        "stats": _cmd_stats,
        "query": _cmd_query,
        "verify-store": _cmd_verify_store,
        "ec-encode": _cmd_ec_encode,
        "serve-shard": _cmd_serve_shard,
        "serve-master": _cmd_serve_master,
        "serve-gateway": _cmd_serve_gateway,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

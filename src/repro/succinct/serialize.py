"""Binary framing for the compressed data structures.

The paper persists NodeFiles/EdgeFiles as serialized flat files and
``mmap``'s them at startup (§4.1) -- loading must not re-run suffix-array
construction. This module provides the little-endian framing used by
``SuccinctFile.to_bytes`` and the layout classes: a stream of sections,
each ``[u32 name-length][name][u64 payload-length][payload]``.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

import numpy as np

MAGIC = b"ZIPG"


def pack_sections(sections: Dict[str, bytes]) -> bytes:
    """Serialize named byte sections into one framed blob."""
    out = bytearray(MAGIC)
    out.extend(struct.pack("<I", len(sections)))
    for name, payload in sections.items():
        encoded = name.encode("ascii")
        out.extend(struct.pack("<I", len(encoded)))
        out.extend(encoded)
        out.extend(struct.pack("<Q", len(payload)))
        out.extend(payload)
    return bytes(out)


def unpack_sections(blob: bytes) -> Dict[str, bytes]:
    """Invert :func:`pack_sections`."""
    if blob[:4] != MAGIC:
        raise ValueError("not a ZipG serialized blob (bad magic)")
    offset = 4
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    sections: Dict[str, bytes] = {}
    for _ in range(count):
        (name_length,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        name = blob[offset : offset + name_length].decode("ascii")
        offset += name_length
        (payload_length,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        sections[name] = blob[offset : offset + payload_length]
        offset += payload_length
    if offset != len(blob):
        raise ValueError("trailing bytes after the last section")
    return sections


def pack_array(array: np.ndarray) -> bytes:
    """Serialize a numpy array (dtype + shape + raw data)."""
    dtype = np.dtype(array.dtype).str.encode("ascii")
    header = struct.pack("<I", len(dtype)) + dtype + struct.pack("<Q", array.size)
    return header + np.ascontiguousarray(array).tobytes()


def unpack_array(payload: bytes) -> np.ndarray:
    """Invert :func:`pack_array` (1-D arrays)."""
    (dtype_length,) = struct.unpack_from("<I", payload, 0)
    offset = 4
    dtype = np.dtype(payload[offset : offset + dtype_length].decode("ascii"))
    offset += dtype_length
    (size,) = struct.unpack_from("<Q", payload, offset)
    offset += 8
    return np.frombuffer(payload, dtype=dtype, count=size, offset=offset).copy()


def pack_ints(*values: int) -> bytes:
    return struct.pack(f"<{len(values)}q", *values)


def unpack_ints(payload: bytes) -> Tuple[int, ...]:
    count = len(payload) // 8
    return struct.unpack(f"<{count}q", payload)

"""Binary framing for the compressed data structures.

The paper persists NodeFiles/EdgeFiles as serialized flat files and
``mmap``'s them at startup (§4.1) -- loading must not re-run suffix-array
construction. This module provides the little-endian framing used by
``SuccinctFile.to_bytes`` and the layout classes: a stream of sections,
each ``[u32 name-length][name][u64 payload-length][payload]``.

Two properties matter for the mmap load path (docs/STORAGE.md):

* **Reads are zero-copy.** :func:`unpack_sections` returns
  ``memoryview`` slices over the caller-owned buffer and
  :func:`unpack_array` returns ``np.frombuffer`` views, so unpacking a
  shard blob touches only the framing headers -- payload pages fault
  lazily when a query first reads them. Callers that need a *mutable*
  array (deletion bitmaps) pass ``copy=True`` explicitly.
* **Writes are streaming.** :func:`write_sections` emits the frame
  chunk-by-chunk to a file handle -- nested section dicts included --
  so saving a shard never materializes one shard-sized contiguous
  blob. Section payloads may be buffers, numpy arrays, lists of
  chunks, or nested section dicts (framed recursively).

A section named :data:`FORMAT_SECTION` tags the codec that produced a
flat-file blob (``"succinct"``, ``"offsets"``, ... -- see
:mod:`repro.succinct.encodings`); blobs written before the tag existed
decode as Succinct.
"""

from __future__ import annotations

import struct
from typing import Dict, IO, List, Tuple, Union

import numpy as np

MAGIC = b"ZIPG"

#: Reserved section name carrying the self-describing encoding tag.
FORMAT_SECTION = "__format__"

#: What a section payload may be on the *write* side: a bytes-like
#: buffer, a numpy array (written as raw contiguous data), a list/tuple
#: of those (concatenated), or a nested section dict (framed
#: recursively).
SectionPayload = Union[bytes, bytearray, memoryview, np.ndarray, list, tuple, dict]


def _as_buffer(chunk: Union[bytes, bytearray, memoryview, np.ndarray]) -> memoryview:
    """A flat byte view of one write-side chunk (no data copied)."""
    if isinstance(chunk, np.ndarray):
        chunk = np.ascontiguousarray(chunk)
        return memoryview(chunk).cast("B")
    view = memoryview(chunk)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    return view


def _payload_chunks(payload: SectionPayload) -> List[memoryview]:
    if isinstance(payload, dict):
        return _frame_chunks(payload)
    if isinstance(payload, (list, tuple)):
        chunks: List[memoryview] = []
        for part in payload:
            chunks.extend(_payload_chunks(part))
        return chunks
    return [_as_buffer(payload)]


def _frame_chunks(sections: Dict[str, SectionPayload]) -> List[memoryview]:
    """The full framed stream as a list of zero-copy chunks."""
    chunks = [_as_buffer(MAGIC + struct.pack("<I", len(sections)))]
    for name, payload in sections.items():
        encoded = name.encode("ascii")
        body = _payload_chunks(payload)
        payload_length = sum(chunk.nbytes for chunk in body)
        chunks.append(
            _as_buffer(
                struct.pack("<I", len(encoded))
                + encoded
                + struct.pack("<Q", payload_length)
            )
        )
        chunks.extend(body)
    return chunks


def sections_nbytes(sections: Dict[str, SectionPayload]) -> int:
    """Framed size of ``sections`` without materializing the frame."""
    return sum(chunk.nbytes for chunk in _frame_chunks(sections))


def write_sections(handle: IO[bytes], sections: Dict[str, SectionPayload]) -> int:
    """Stream the framed sections to ``handle`` chunk-by-chunk.

    Returns the number of bytes written. Unlike :func:`pack_sections`
    this never builds the whole blob in memory, so it is the save path
    for stores larger than RAM.
    """
    total = 0
    for chunk in _frame_chunks(sections):
        handle.write(chunk)
        total += chunk.nbytes
    return total


def pack_sections(sections: Dict[str, SectionPayload]) -> bytes:
    """Serialize named sections into one framed blob (owned bytes)."""
    return b"".join(_frame_chunks(sections))  # zipg: owned-copy


def unpack_sections(blob: Union[bytes, bytearray, memoryview]) -> Dict[str, memoryview]:
    """Invert :func:`pack_sections` without copying payloads.

    The returned values are ``memoryview`` slices over ``blob`` --
    valid exactly as long as the caller keeps the underlying buffer
    (bytes object or mmap) alive. Only the framing headers are read
    here; an mmap-backed blob faults no payload pages.
    """
    view = memoryview(blob)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    if bytes(view[:4]) != MAGIC:
        raise ValueError("not a ZipG serialized blob (bad magic)")
    offset = 4
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    sections: Dict[str, memoryview] = {}
    for _ in range(count):
        (name_length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        name = bytes(view[offset : offset + name_length]).decode("ascii")
        offset += name_length
        (payload_length,) = struct.unpack_from("<Q", view, offset)
        offset += 8
        if offset + payload_length > len(view):
            raise ValueError("truncated section payload")
        sections[name] = view[offset : offset + payload_length]
        offset += payload_length
    if offset != len(view):
        raise ValueError("trailing bytes after the last section")
    return sections


def array_header(array: np.ndarray) -> bytes:
    """The dtype+size header :func:`pack_array` prefixes to raw data."""
    dtype = np.dtype(array.dtype).str.encode("ascii")
    return struct.pack("<I", len(dtype)) + dtype + struct.pack("<Q", array.size)


def array_chunks(array: np.ndarray) -> Tuple[bytes, np.ndarray]:
    """Zero-copy write-side representation of a packed array.

    Returns ``(header, contiguous array)`` suitable as a section
    payload for :func:`write_sections` -- the array's data buffer is
    written directly, never copied into an intermediate blob.
    """
    return array_header(array), np.ascontiguousarray(array)


def pack_array(array: np.ndarray) -> bytes:
    """Serialize a numpy array (dtype + size + raw data) to owned bytes."""
    header, data = array_chunks(array)
    return header + data.tobytes()  # zipg: owned-copy


def unpack_array(
    payload: Union[bytes, bytearray, memoryview], copy: bool = False
) -> np.ndarray:
    """Invert :func:`pack_array` (1-D arrays).

    By default the result is a **read-only view** over ``payload``
    (``np.frombuffer``): no data is copied and, for mmap-backed
    buffers, no pages fault until elements are read. Pass
    ``copy=True`` only when the caller mutates the array afterwards.
    """
    view = memoryview(payload)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    (dtype_length,) = struct.unpack_from("<I", view, 0)
    offset = 4
    dtype = np.dtype(bytes(view[offset : offset + dtype_length]).decode("ascii"))
    offset += dtype_length
    (size,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    array = np.frombuffer(view, dtype=dtype, count=size, offset=offset)
    if copy:
        return array.copy()  # zipg: owned-copy
    return array


def pack_ints(*values: int) -> bytes:
    return struct.pack(f"<{len(values)}q", *values)


def unpack_ints(payload: Union[bytes, bytearray, memoryview]) -> Tuple[int, ...]:
    view = memoryview(payload)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    count = len(view) // 8
    return struct.unpack(f"<{count}q", view[: count * 8])

"""SA-IS: linear-time suffix array construction (Nong, Zhang, Chan).

An alternative to the vectorized prefix-doubling builder in
:mod:`repro.succinct.suffix_array`. Prefix doubling is O(n log^2 n) but
every pass is a handful of numpy kernels, which wins at the MB scale
this reproduction runs at; SA-IS is asymptotically optimal O(n) and is
provided for completeness (and as an independent oracle -- the property
tests check the two construct identical arrays).
"""

from __future__ import annotations

from typing import List

import numpy as np

L_TYPE = 0
S_TYPE = 1


def build_suffix_array_sais(data: bytes) -> np.ndarray:
    """Suffix array of ``data`` via SA-IS; identical output to
    :func:`repro.succinct.suffix_array.build_suffix_array`."""
    n = len(data)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Work over ints with an appended sentinel 0; shift input bytes by
    # +1 so the sentinel is strictly smallest and unique.
    text = [byte + 1 for byte in data] + [0]
    result = _sais(text, 256 + 1)
    # Drop the sentinel suffix (always first).
    return np.asarray(result[1:], dtype=np.int64)


def _classify(text: List[int]) -> List[int]:
    n = len(text)
    types = [S_TYPE] * n
    for i in range(n - 2, -1, -1):
        if text[i] > text[i + 1]:
            types[i] = L_TYPE
        elif text[i] == text[i + 1]:
            types[i] = types[i + 1]
    return types


def _is_lms(types: List[int], index: int) -> bool:
    return index > 0 and types[index] == S_TYPE and types[index - 1] == L_TYPE


def _bucket_sizes(text: List[int], alphabet_size: int) -> List[int]:
    sizes = [0] * alphabet_size
    for char in text:
        sizes[char] += 1
    return sizes


def _bucket_heads(sizes: List[int]) -> List[int]:
    heads = []
    offset = 0
    for size in sizes:
        heads.append(offset)
        offset += size
    return heads


def _bucket_tails(sizes: List[int]) -> List[int]:
    tails = []
    offset = 0
    for size in sizes:
        offset += size
        tails.append(offset - 1)
    return tails


def _induce_sort(text: List[int], suffix_array: List[int], types: List[int],
                 sizes: List[int]) -> None:
    """Induce L-suffixes left-to-right, then S-suffixes right-to-left."""
    n = len(text)
    heads = _bucket_heads(sizes)
    for i in range(n):
        j = suffix_array[i] - 1
        if suffix_array[i] > 0 and types[j] == L_TYPE:
            suffix_array[heads[text[j]]] = j
            heads[text[j]] += 1
    tails = _bucket_tails(sizes)
    for i in range(n - 1, -1, -1):
        j = suffix_array[i] - 1
        if suffix_array[i] > 0 and types[j] == S_TYPE:
            suffix_array[tails[text[j]]] = j
            tails[text[j]] -= 1


def _sais(text: List[int], alphabet_size: int) -> List[int]:
    n = len(text)
    types = _classify(text)
    sizes = _bucket_sizes(text, alphabet_size)

    # Step 1: place LMS suffixes at their bucket tails, induce-sort.
    suffix_array = [-1] * n
    tails = _bucket_tails(sizes)
    for i in range(n - 1, -1, -1):
        if _is_lms(types, i):
            suffix_array[tails[text[i]]] = i
            tails[text[i]] -= 1
    suffix_array[0] = n - 1  # the sentinel
    _induce_sort(text, suffix_array, types, sizes)

    # Step 2: name the sorted LMS substrings.
    lms_order = [i for i in suffix_array if _is_lms(types, i)]
    names = [-1] * n
    current = 0
    names[lms_order[0]] = 0
    for prev, this in zip(lms_order, lms_order[1:]):
        if not _lms_substrings_equal(text, types, prev, this):
            current += 1
        names[this] = current
    reduced_positions = [i for i in range(n) if _is_lms(types, i)]
    reduced = [names[i] for i in reduced_positions]

    # Step 3: sort the reduced problem (recurse if names repeat).
    if current + 1 == len(reduced):
        # All names distinct: the reduced SA is a direct inversion.
        reduced_sa = [0] * len(reduced)
        for index, name in enumerate(reduced):
            reduced_sa[name] = index
    else:
        reduced_sa = _sais_reduced(reduced, current + 1)

    # Step 4: place LMS suffixes in reduced-SA order, induce again.
    suffix_array = [-1] * n
    tails = _bucket_tails(sizes)
    for index in range(len(reduced_sa) - 1, -1, -1):
        position = reduced_positions[reduced_sa[index]]
        suffix_array[tails[text[position]]] = position
        tails[text[position]] -= 1
    suffix_array[0] = n - 1
    _induce_sort(text, suffix_array, types, sizes)
    return suffix_array


def _sais_reduced(reduced: List[int], alphabet_size: int) -> List[int]:
    """Recurse on the reduced string (append its own sentinel)."""
    shifted = [value + 1 for value in reduced] + [0]
    result = _sais(shifted, alphabet_size + 1)
    return result[1:]


def _lms_substrings_equal(text: List[int], types: List[int], a: int, b: int) -> bool:
    n = len(text)
    if a == n - 1 or b == n - 1:
        return a == b
    offset = 0
    while True:
        a_lms = offset > 0 and _is_lms(types, a + offset)
        b_lms = offset > 0 and _is_lms(types, b + offset)
        if a_lms and b_lms:
            return True
        if a_lms != b_lms:
            return False
        if text[a + offset] != text[b + offset] or types[a + offset] != types[b + offset]:
            return False
        offset += 1

"""OffsetArrayFile: a Log(Graph)-style fixed-width flat-file codec.

Log(Graph) (PAPERS.md) shows that most of compressed-graph storage
wins come not from entropy coders but from storing offset and
adjacency arrays at their *near-optimal fixed width*: ceil(log2 k)
bits per element instead of a machine word. This codec applies the
same trick to ZipG's flat files: the record text is stored as a
bit-packed array of ``ceil(log2 sigma)``-bit symbol codes (``sigma`` =
distinct bytes present), while the record/offset directories stay in
the fixed-width arrays NodeFile/EdgeFile already keep.

The trade against Succinct (the Fig. 5/6 ablation):

* ``extract`` is a direct O(length) vectorized decode -- no NPA walks,
  no ``alpha`` latency knob, and pages fault only for the touched
  slice, so it is much faster than Succinct extraction;
* there is no suffix-array index, so ``search``/``count`` degrade to
  one vectorized O(n) scan (decode + rolling compare);
* compression is weaker: ``width/8`` of the input (~12% smaller for
  a 64-symbol alphabet) versus Succinct's sampled-array ratios.

Like :class:`~repro.succinct.succinct_file.SuccinctFile`, the
serialized form is framed sections whose arrays load as zero-copy
``np.frombuffer`` views, so mmap-backed loads are O(1).
"""

from __future__ import annotations

# zipg: hot-path

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.succinct.stats import AccessStats

if TYPE_CHECKING:
    from repro.perf.cache import HotSetCache

SENTINEL = 0  # same exclusion as SuccinctFile: keeps codecs swappable


class OffsetArrayFile:
    """A flat file stored as a fixed-width bit-packed symbol array.

    Args:
        data: the input bytes. Must not contain the sentinel byte 0x00
            (the same contract as :class:`SuccinctFile`, so the codecs
            are interchangeable behind ``ShardEncoding``).
        alpha: accepted for interface parity with the Succinct codec;
            this codec has no sampling knob.
        stats: optional shared access meter.
    """

    #: Self-describing codec tag written into the section framing.
    encoding_name = "offsets"

    def __init__(
        self,
        data: bytes,
        alpha: int = 32,
        stats: Optional[AccessStats] = None,
    ) -> None:
        data = bytes(data)  # zipg: owned-copy
        if SENTINEL in data:
            raise ValueError("input data must not contain the sentinel byte 0x00")
        self._alpha = alpha
        self._input_size = len(data)
        self.stats = stats if stats is not None else AccessStats()
        symbols = np.frombuffer(data, dtype=np.uint8)
        self._alphabet = np.unique(symbols)
        self._width = max(1, int(self._alphabet.size - 1).bit_length())
        codes = np.searchsorted(self._alphabet, symbols).astype(np.uint16)
        self._packed = _bitpack(codes, self._width)
        self._init_cache_state()

    def _init_cache_state(self) -> None:
        from repro.perf.cache import new_cache_tag

        self._cache = None
        self._cache_epoch_of: Optional[Callable[[], int]] = None
        self._cache_tag = new_cache_tag()

    # ------------------------------------------------------------------
    # Hot-set cache (repro.perf) -- same seam as SuccinctFile
    # ------------------------------------------------------------------

    def attach_cache(
        self,
        cache: "HotSetCache",
        epoch_of: Optional[Callable[[], int]] = None,
        coalesce_window_s: float = 0.0,
    ) -> None:
        """Front ``extract``/``search`` with a :class:`HotSetCache`.

        ``coalesce_window_s`` is accepted for interface parity and
        ignored: direct decodes have no lockstep kernel to coalesce
        into.
        """
        self._cache = cache
        self._cache_epoch_of = epoch_of

    def detach_cache(self) -> None:
        self._cache = None
        self._cache_epoch_of = None

    def _cache_epoch(self) -> int:
        return self._cache_epoch_of() if self._cache_epoch_of is not None else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Length of the original input."""
        return self._input_size

    @property
    def alpha(self) -> int:
        return self._alpha

    def original_size_bytes(self) -> int:
        """Size of the uncompressed input."""
        return self._input_size

    def serialized_size_bytes(self) -> int:
        """Bytes the packed representation occupies when persisted."""
        return int(self._packed.nbytes + self._alphabet.nbytes)

    def compression_ratio(self) -> float:
        """Uncompressed size / compressed size (> 1 means smaller)."""
        compressed = self.serialized_size_bytes()
        return self._input_size / compressed if compressed else float("inf")

    # ------------------------------------------------------------------
    # Decode kernel
    # ------------------------------------------------------------------

    def _decode(self, offset: int, length: int) -> np.ndarray:
        """Bytes ``[offset, offset + length)`` as a ``uint8`` array.

        One vectorized gather over the touched packed bytes: for an
        mmap-backed file only the pages covering the slice fault in.
        """
        if length <= 0:
            return np.empty(0, dtype=np.uint8)
        bit_pos = np.arange(offset, offset + length, dtype=np.int64) * self._width
        byte_idx = bit_pos >> 3
        shift = (bit_pos & 7).astype(np.uint16)
        low = self._packed[byte_idx].astype(np.uint16)
        high = self._packed[byte_idx + 1].astype(np.uint16)
        mask = np.uint16((1 << self._width) - 1)
        codes = ((low | (high << np.uint16(8))) >> shift) & mask
        return self._alphabet[codes]

    # ------------------------------------------------------------------
    # Public queries (the ShardEncoding surface)
    # ------------------------------------------------------------------

    def _check_extract(self, offset: int, length: int) -> int:
        if length < 0:
            raise ValueError("length must be non-negative")
        if not 0 <= offset <= self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size}]")
        return min(length, self._input_size - offset)

    @obs.traced("succinct.extract", layer="succinct")
    def extract(self, offset: int, length: int) -> bytes:
        """``length`` bytes of the input starting at ``offset``."""
        length = self._check_extract(offset, length)
        cache = self._cache
        if cache is None:
            return self._extract_uncached(offset, length)
        key = ("of", self._cache_tag, self._cache_epoch(), "x", offset, length)
        return cache.get_or_load(
            key, lambda: self._extract_uncached(offset, length)
        )

    def _extract_uncached(self, offset: int, length: int) -> bytes:
        self.stats.random_accesses += 1
        self.stats.sequential_bytes += length
        return self._decode(offset, length).tobytes()  # zipg: owned-copy

    @obs.traced("succinct.extract_batch", layer="succinct")
    def extract_batch(self, requests: Sequence[Tuple[int, int]]) -> List[bytes]:
        """Per-request :meth:`extract`; decodes are already direct, so
        there is no lockstep batching to amortize."""
        # Each extract is one vectorized O(length) gather -- no
        # per-symbol NPA hops to batch.
        return [self.extract(o, n) for o, n in requests]  # zipg: ignore[HOT002]

    def char_at(self, offset: int) -> int:
        """Byte value at ``offset`` of the original input."""
        if not 0 <= offset < self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size})")
        self.stats.random_accesses += 1
        return int(self._decode(offset, 1)[0])

    def char_at_batch(self, offsets: Sequence[int]) -> np.ndarray:
        """Byte values at many offsets (aligned ``uint8`` array)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return np.empty(0, dtype=np.uint8)
        if int(offsets.min()) < 0 or int(offsets.max()) >= self._input_size:
            raise IndexError(
                f"offset out of range [0, {self._input_size}) in batch"
            )
        self.stats.random_accesses += len(offsets)
        bit_pos = offsets * self._width
        byte_idx = bit_pos >> 3
        shift = (bit_pos & 7).astype(np.uint16)
        low = self._packed[byte_idx].astype(np.uint16)
        high = self._packed[byte_idx + 1].astype(np.uint16)
        mask = np.uint16((1 << self._width) - 1)
        codes = ((low | (high << np.uint16(8))) >> shift) & mask
        return self._alphabet[codes]

    def extract_until(
        self, offset: int, terminator: int, limit: Optional[int] = None
    ) -> bytes:
        """Extract from ``offset`` up to (not including) ``terminator``.

        Decodes in growing chunks so short records never pay for a
        full-record decode.
        """
        if not 0 <= offset <= self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size}]")
        self.stats.random_accesses += 1
        remaining = self._input_size - offset
        if limit is not None:
            remaining = min(remaining, limit)
        out: List[np.ndarray] = []
        taken = 0
        chunk = 64
        while taken < remaining:
            step = min(chunk, remaining - taken)
            decoded = self._decode(offset + taken, step)
            hits = np.nonzero(decoded == terminator)[0]
            if hits.size:
                out.append(decoded[: int(hits[0])])
                taken += int(hits[0])
                break
            out.append(decoded)
            taken += step
            chunk *= 2
        result = np.concatenate(out) if out else np.empty(0, dtype=np.uint8)
        self.stats.sequential_bytes += len(result)
        return result.tobytes()  # zipg: owned-copy

    @obs.traced("succinct.count", layer="succinct")
    def count(self, pattern: bytes) -> int:
        """Number of occurrences of ``pattern`` in the input."""
        pattern = bytes(pattern)  # zipg: owned-copy
        if not pattern:
            self.stats.searches += 1
            return self._input_size + 1
        return len(self.search(pattern))

    @obs.traced("succinct.search", layer="succinct")
    def search(self, pattern: bytes) -> np.ndarray:
        """Offsets (ascending) where ``pattern`` occurs.

        Without a suffix index this is one vectorized scan: decode the
        file and roll an equality mask across it -- O(n * len(pattern))
        numpy work, the cost side of the Log(Graph)-style trade.
        """
        pattern = bytes(pattern)  # zipg: owned-copy
        cache = self._cache
        if cache is None:
            return self._search_uncached(pattern)

        def _load() -> np.ndarray:
            result = self._search_uncached(pattern)
            result.setflags(write=False)
            return result

        key = ("of", self._cache_tag, self._cache_epoch(), "s", pattern)
        return cache.get_or_load(key, _load)

    def _search_uncached(self, pattern: bytes) -> np.ndarray:
        self.stats.searches += 1
        n = self._input_size
        m = len(pattern)
        if m == 0:
            # Parity with SuccinctFile: the empty pattern matches every
            # row of the conceptual suffix matrix (n + 1 of them).
            return np.arange(n + 1, dtype=np.int64)
        if SENTINEL in pattern:
            raise ValueError("patterns must not contain the sentinel byte 0x00")
        if m > n:
            return np.empty(0, dtype=np.int64)
        decoded = self._decode(0, n)
        matches = np.ones(n - m + 1, dtype=bool)
        for index, char in enumerate(pattern):
            matches &= decoded[index : n - m + 1 + index] == char
        hits = np.nonzero(matches)[0].astype(np.int64)
        self.stats.random_accesses += len(hits)
        return hits

    def decompress(self) -> bytes:
        """Reconstruct the full original input (diagnostic helper)."""
        return self.extract(0, self._input_size)

    # ------------------------------------------------------------------
    # Binary serialization
    # ------------------------------------------------------------------

    def sections(self) -> dict:
        """Write-side sections; array payloads are zero-copy chunks."""
        from repro.succinct.serialize import FORMAT_SECTION, array_chunks, pack_ints

        return {
            FORMAT_SECTION: self.encoding_name.encode("ascii"),
            "meta": pack_ints(self._input_size, self._width),
            "alphabet": array_chunks(self._alphabet),
            "packed": array_chunks(self._packed),
        }

    def to_bytes(self) -> bytes:
        """Serialize the packed representation to one owned blob."""
        from repro.succinct.serialize import pack_sections

        return pack_sections(self.sections())

    @classmethod
    def from_sections(
        cls, sections: dict, stats: Optional[AccessStats] = None
    ) -> "OffsetArrayFile":
        """Rebuild from unpacked sections without copying: both arrays
        are ``np.frombuffer`` views over the caller-owned buffer."""
        from repro.succinct.serialize import unpack_array, unpack_ints

        input_size, width = unpack_ints(sections["meta"])
        instance = cls.__new__(cls)
        instance._alpha = 32
        instance._input_size = input_size
        instance._width = width
        instance.stats = stats if stats is not None else AccessStats()
        instance._alphabet = unpack_array(sections["alphabet"])
        instance._packed = unpack_array(sections["packed"])
        instance._init_cache_state()
        return instance

    @classmethod
    def from_bytes(
        cls, blob: bytes, stats: Optional[AccessStats] = None
    ) -> "OffsetArrayFile":
        """Reconstruct from :meth:`to_bytes` output."""
        from repro.succinct.serialize import unpack_sections

        return cls.from_sections(unpack_sections(blob), stats=stats)


def _bitpack(codes: np.ndarray, width: int) -> np.ndarray:
    """Pack ``width``-bit codes into a ``uint8`` array.

    One trailing pad byte keeps the decode kernel's unconditional
    two-byte gather in bounds for the last symbol.
    """
    n = len(codes)
    total_bits = n * width
    packed = np.zeros((total_bits + 7) // 8 + 1, dtype=np.uint8)
    if n == 0:
        return packed
    bit_pos = np.arange(n, dtype=np.int64) * width
    byte_idx = bit_pos >> 3
    shift = (bit_pos & 7).astype(np.uint16)
    spread = codes.astype(np.uint16) << shift
    np.bitwise_or.at(packed, byte_idx, (spread & np.uint16(0xFF)).astype(np.uint8))
    np.bitwise_or.at(
        packed, byte_idx + 1, (spread >> np.uint16(8)).astype(np.uint8)
    )
    return packed

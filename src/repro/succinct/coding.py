"""Integer coding used for storage accounting and serialization.

Succinct's NPA is stored with two-level delta encoding; this module
provides the Elias-gamma bit-cost functions used to account for that
compressed footprint honestly, plus varint encode/decode used by the
LogStore's on-disk record format.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np


def elias_gamma_bit_size(value: int) -> int:
    """Bits to Elias-gamma code ``value`` (must be >= 1)."""
    if value < 1:
        raise ValueError("Elias-gamma codes positive integers only")
    return 2 * (value.bit_length() - 1) + 1


def elias_gamma_bit_size_array(values: np.ndarray) -> int:
    """Total Elias-gamma bits for an array of positive integers."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    if (values < 1).any():
        raise ValueError("Elias-gamma codes positive integers only")
    # bit_length(v) == floor(log2 v) + 1
    lengths = np.floor(np.log2(values.astype(np.float64))).astype(np.int64) + 1
    return int((2 * (lengths - 1) + 1).sum())


def delta_encoded_bit_size(values: np.ndarray, sample_every: int = 128) -> int:
    """Bits to store a non-decreasing sequence with sampled delta coding.

    Every ``sample_every``-th value is stored verbatim (64 bits) as a
    skip anchor; the gaps in between are Elias-gamma coded (gap + 1, so
    zero gaps are representable). This mirrors the two-level layout
    Succinct uses for the NPA within each character bucket.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    if (np.diff(values) < 0).any():
        raise ValueError("delta coding requires a non-decreasing sequence")
    anchors = (values.size + sample_every - 1) // sample_every
    bits = anchors * 64
    deltas = np.diff(values)
    # Deltas that cross an anchor are not coded (the anchor restates the value).
    if deltas.size:
        keep = np.ones(deltas.size, dtype=bool)
        keep[sample_every - 1 :: sample_every] = False
        kept = deltas[keep]
        if kept.size:
            bits += elias_gamma_bit_size_array(kept + 1)
    return bits


def varint_encode(value: int) -> bytes:
    """LEB128-style varint for non-negative integers."""
    if value < 0:
        raise ValueError("varint_encode takes non-negative integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)  # zipg: owned-copy


def varint_decode(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint starting at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise ValueError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def varint_encode_all(values: Iterable[int]) -> bytes:
    """Concatenated varints for a sequence of non-negative integers."""
    out = bytearray()
    for value in values:
        out.extend(varint_encode(value))
    return bytes(out)  # zipg: owned-copy


def varint_decode_all(data: bytes, count: int, offset: int = 0) -> Tuple[List[int], int]:
    """Decode ``count`` varints; returns (values, next_offset)."""
    values = []
    for _ in range(count):
        value, offset = varint_decode(data, offset)
        values.append(value)
    return values, offset

"""Succinct substrate: queries on compressed unstructured data.

This subpackage is a pure-Python reimplementation of the parts of
Succinct (Agarwal et al., NSDI 2015) that ZipG builds on:

* :class:`~repro.succinct.succinct_file.SuccinctFile` -- a flat-file
  store supporting ``extract`` (random access) and ``search`` (substring
  search) directly on a compressed representation built from a sampled
  suffix array, a sampled inverse suffix array and the next-pointer
  array (NPA).
* :class:`~repro.succinct.kv.SuccinctKV` -- a key-value interface
  layered on the flat file.

Compression is controlled by the sampling rate ``alpha``: storage is
roughly ``2 * n * ceil(log2 n) / alpha`` bits for the two sampled arrays
plus a delta-encoded NPA, while each unsampled lookup costs ``O(alpha)``
NPA hops (the paper's space/latency knob, §3.1 of ZipG).
"""

from repro.succinct.bitvector import BitVector
from repro.succinct.coding import (
    delta_encoded_bit_size,
    elias_gamma_bit_size,
    varint_decode,
    varint_encode,
)
from repro.succinct.kv import SuccinctKV
from repro.succinct.npa import NextPointerArray
from repro.succinct.sais import build_suffix_array_sais
from repro.succinct.stats import AccessStats
from repro.succinct.succinct_file import SuccinctFile
from repro.succinct.suffix_array import build_suffix_array, inverse_permutation

__all__ = [
    "AccessStats",
    "BitVector",
    "NextPointerArray",
    "SuccinctFile",
    "SuccinctKV",
    "build_suffix_array",
    "build_suffix_array_sais",
    "delta_encoded_bit_size",
    "elias_gamma_bit_size",
    "inverse_permutation",
    "varint_decode",
    "varint_encode",
]

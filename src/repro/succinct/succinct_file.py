"""SuccinctFile: random access and substring search on compressed data.

This is the flat-file interface of Succinct (§3.1 of the ZipG paper).
The input text is *not* stored. What is kept is:

* a sampled suffix array (rows whose SA value is a multiple of
  ``alpha``), with a rank bitmap marking sampled rows;
* a sampled inverse suffix array (ISA of every ``alpha``-th text
  position);
* the next-pointer array (NPA) with its character-bucket directory.

``extract`` reconstructs arbitrary substrings by walking the NPA from a
sampled ISA entry; ``search`` runs backward search by binary-searching
the NPA within character buckets and resolves matching rows to text
offsets through the sampled SA. Both therefore run *directly on the
compressed representation*. The sampling rate ``alpha`` is the
space/latency knob: storage for the sampled arrays shrinks as
``1/alpha`` while each unsampled lookup costs up to ``alpha`` NPA hops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.succinct.bitvector import BitVector
from repro.succinct.npa import NextPointerArray
from repro.succinct.stats import AccessStats
from repro.succinct.suffix_array import build_suffix_array, inverse_permutation

SENTINEL = 0  # terminal byte appended to every file; may not occur in input


class SuccinctFile:
    """A compressed flat file supporting ``extract`` and ``search``.

    Args:
        data: the input bytes. Must not contain the sentinel byte 0x00.
        alpha: sampling rate for the SA/ISA samples (>= 1). Matches the
            paper's ``alpha``: storage ~ ``2 n ceil(log n) / alpha``
            bits for the samples, lookup latency ~ ``alpha`` hops.
        stats: optional shared :class:`AccessStats` to accumulate into
            (shards owned by one server share a single meter).
        sa_algorithm: suffix-array builder -- ``"doubling"`` (vectorized
            prefix doubling, the default) or ``"sais"`` (linear-time
            SA-IS).
    """

    def __init__(self, data: bytes, alpha: int = 32, stats: Optional[AccessStats] = None,
                 sa_algorithm: str = "doubling"):
        if alpha < 1:
            raise ValueError("alpha must be >= 1")
        if sa_algorithm not in ("doubling", "sais"):
            raise ValueError("sa_algorithm must be 'doubling' or 'sais'")
        data = bytes(data)
        if SENTINEL in data:
            raise ValueError("input data must not contain the sentinel byte 0x00")
        self._alpha = alpha
        self._input_size = len(data)
        self.stats = stats if stats is not None else AccessStats()

        text = data + bytes([SENTINEL])
        n = len(text)
        self._n = n
        if sa_algorithm == "sais":
            from repro.succinct.sais import build_suffix_array_sais

            suffix_array = build_suffix_array_sais(text)
        else:
            suffix_array = build_suffix_array(text)
        isa = inverse_permutation(suffix_array)
        self._npa = NextPointerArray.from_text(text, suffix_array, isa)

        # Value-based SA sampling: keep rows whose SA value % alpha == 0.
        sampled_rows = np.nonzero(suffix_array % alpha == 0)[0]
        self._sampled_row_marks = BitVector.from_indices(n, sampled_rows)
        self._sa_samples = suffix_array[sampled_rows].copy()
        # Position-based ISA sampling: ISA of text positions 0, alpha, 2*alpha...
        self._isa_samples = isa[np.arange(0, n, alpha)].copy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Length of the original input (excluding the sentinel)."""
        return self._input_size

    @property
    def alpha(self) -> int:
        return self._alpha

    def original_size_bytes(self) -> int:
        """Size of the uncompressed input."""
        return self._input_size

    def serialized_size_bytes(self) -> int:
        """Bytes the compressed representation occupies when persisted."""
        if self._n == 0:
            return 0
        value_bits = max(1, (self._n - 1).bit_length())
        sample_bytes = (
            (len(self._sa_samples) + len(self._isa_samples)) * value_bits + 7
        ) // 8
        return (
            sample_bytes
            + self._sampled_row_marks.serialized_size_bytes()
            + self._npa.serialized_size_bytes()
        )

    def compression_ratio(self) -> float:
        """Uncompressed size / compressed size (> 1 means smaller)."""
        compressed = self.serialized_size_bytes()
        return self._input_size / compressed if compressed else float("inf")

    # ------------------------------------------------------------------
    # Core lookups
    # ------------------------------------------------------------------

    def _lookup_sa(self, row: int) -> int:
        """SA value of ``row`` via NPA walk to the nearest sampled row."""
        steps = 0
        current = row
        while not self._sampled_row_marks[current]:
            current = self._npa[current]
            steps += 1
        self.stats.npa_hops += steps
        rank = self._sampled_row_marks.rank1(current)
        value = int(self._sa_samples[rank])
        return (value - steps) % self._n

    def _lookup_isa(self, position: int) -> int:
        """Row whose suffix starts at text ``position``."""
        anchor, remainder = divmod(position, self._alpha)
        row = int(self._isa_samples[anchor])
        npa_list = self._npa._npa_list
        for _ in range(remainder):
            row = npa_list[row]
        self.stats.npa_hops += remainder
        return row

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------

    def extract(self, offset: int, length: int) -> bytes:
        """Return ``length`` bytes of the original input starting at ``offset``.

        Runs on the compressed representation: one sampled-ISA anchor
        lookup plus one NPA hop per extracted byte.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if not 0 <= offset <= self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size}]")
        length = min(length, self._input_size - offset)
        self.stats.random_accesses += 1
        self.stats.sequential_bytes += length
        if length == 0:
            return b""
        row = self._lookup_isa(offset)
        # Hot path: bind the NPA internals locally (one attribute
        # lookup per extracted byte otherwise dominates).
        npa_list = self._npa._npa_list
        char_of_row = self._npa.char_of_row
        out = bytearray()
        append = out.append
        for _ in range(length):
            append(char_of_row(row))
            row = npa_list[row]
        self.stats.npa_hops += length
        return bytes(out)

    def char_at(self, offset: int) -> int:
        """Byte value at ``offset`` of the original input."""
        if not 0 <= offset < self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size})")
        self.stats.random_accesses += 1
        return self._npa.char_of_row(self._lookup_isa(offset))

    def extract_until(self, offset: int, terminator: int, limit: Optional[int] = None) -> bytes:
        """Extract from ``offset`` up to (not including) ``terminator``.

        Stops at end-of-file if the terminator never occurs. ``limit``
        bounds the number of bytes examined.
        """
        if not 0 <= offset <= self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size}]")
        self.stats.random_accesses += 1
        remaining = self._input_size - offset
        if limit is not None:
            remaining = min(remaining, limit)
        if remaining <= 0:
            return b""
        row = self._lookup_isa(offset)
        out = bytearray()
        for _ in range(remaining):
            char = self._npa.char_of_row(row)
            if char == terminator:
                break
            out.append(char)
            row = self._npa[row]
        self.stats.npa_hops += len(out)
        self.stats.sequential_bytes += len(out)
        return bytes(out)

    def _pattern_row_range(self, pattern: bytes) -> tuple:
        """Row range ``[low, high)`` of suffixes prefixed by ``pattern``."""
        if not pattern:
            return (0, self._n)
        if SENTINEL in pattern:
            raise ValueError("patterns must not contain the sentinel byte 0x00")
        low, high = self._npa.bucket_range(pattern[-1])
        for char in reversed(pattern[:-1]):
            if low >= high:
                return (0, 0)
            low, high = self._npa.refine_backward(char, low, high)
        return (low, high)

    def count(self, pattern: bytes) -> int:
        """Number of occurrences of ``pattern`` in the input."""
        self.stats.searches += 1
        low, high = self._pattern_row_range(bytes(pattern))
        return high - low

    def search(self, pattern: bytes) -> np.ndarray:
        """Offsets (ascending) where ``pattern`` occurs in the input."""
        self.stats.searches += 1
        low, high = self._pattern_row_range(bytes(pattern))
        offsets = [self._lookup_sa(row) for row in range(low, high)]
        self.stats.random_accesses += high - low
        return np.asarray(sorted(offsets), dtype=np.int64)

    def decompress(self) -> bytes:
        """Reconstruct the full original input (diagnostic helper)."""
        return self.extract(0, self._input_size)

    # ------------------------------------------------------------------
    # Binary serialization (§4.1: persisted structures are loaded, not
    # reconstructed, at startup)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the compressed structures (samples, row bitmap,
        NPA + bucket directory) -- no text, no suffix array."""
        from repro.succinct.serialize import pack_array, pack_ints, pack_sections

        return pack_sections({
            "meta": pack_ints(self._alpha, self._input_size, self._n),
            "sa_samples": pack_array(self._sa_samples),
            "isa_samples": pack_array(self._isa_samples),
            "row_marks": pack_array(self._sampled_row_marks.blocks),
            "npa": pack_array(self._npa.npa_array),
            "bucket_chars": pack_array(self._npa.bucket_chars),
            "bucket_starts": pack_array(self._npa.bucket_starts),
        })

    @classmethod
    def from_bytes(cls, blob: bytes, stats: Optional[AccessStats] = None) -> "SuccinctFile":
        """Reconstruct a file from :meth:`to_bytes` output without
        re-running suffix-array construction."""
        from repro.succinct.serialize import unpack_array, unpack_ints, unpack_sections

        sections = unpack_sections(blob)
        alpha, input_size, n = unpack_ints(sections["meta"])
        instance = cls.__new__(cls)
        instance._alpha = alpha
        instance._input_size = input_size
        instance._n = n
        instance.stats = stats if stats is not None else AccessStats()
        instance._sa_samples = unpack_array(sections["sa_samples"])
        instance._isa_samples = unpack_array(sections["isa_samples"])
        instance._sampled_row_marks = BitVector.from_blocks(
            n, unpack_array(sections["row_marks"])
        )
        instance._npa = NextPointerArray(
            unpack_array(sections["npa"]),
            unpack_array(sections["bucket_chars"]),
            unpack_array(sections["bucket_starts"]),
        )
        return instance

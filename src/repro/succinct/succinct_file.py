"""SuccinctFile: random access and substring search on compressed data.

This is the flat-file interface of Succinct (§3.1 of the ZipG paper).
The input text is *not* stored. What is kept is:

* a sampled suffix array (rows whose SA value is a multiple of
  ``alpha``), with a rank bitmap marking sampled rows;
* a sampled inverse suffix array (ISA of every ``alpha``-th text
  position);
* the next-pointer array (NPA) with its character-bucket directory.

``extract`` reconstructs arbitrary substrings by walking the NPA from a
sampled ISA entry; ``search`` runs backward search by binary-searching
the NPA within character buckets and resolves matching rows to text
offsets through the sampled SA. Both therefore run *directly on the
compressed representation*. The sampling rate ``alpha`` is the
space/latency knob: storage for the sampled arrays shrinks as
``1/alpha`` while each unsampled lookup costs up to ``alpha`` NPA hops.
"""

from __future__ import annotations

# zipg: hot-path

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.succinct.bitvector import BitVector
from repro.succinct.npa import NextPointerArray
from repro.succinct.stats import AccessStats
from repro.succinct.suffix_array import build_suffix_array, inverse_permutation

if TYPE_CHECKING:
    from repro.perf.cache import HotSetCache

SENTINEL = 0  # terminal byte appended to every file; may not occur in input

# Below this many bytes the numpy kernel's fixed setup cost loses to the
# plain Python loop, so ``extract`` falls back to the scalar path.
_SCALAR_EXTRACT_CUTOFF = 8

# Same trade-off for ``search``: resolving only a handful of matching
# rows is cheaper with per-row scalar walks than one batched kernel.
_SCALAR_SEARCH_CUTOFF = 8


class SuccinctFile:
    """A compressed flat file supporting ``extract`` and ``search``.

    Args:
        data: the input bytes. Must not contain the sentinel byte 0x00.
        alpha: sampling rate for the SA/ISA samples (>= 1). Matches the
            paper's ``alpha``: storage ~ ``2 n ceil(log n) / alpha``
            bits for the samples, lookup latency ~ ``alpha`` hops.
        stats: optional shared :class:`AccessStats` to accumulate into
            (shards owned by one server share a single meter).
        sa_algorithm: suffix-array builder -- ``"doubling"`` (vectorized
            prefix doubling, the default) or ``"sais"`` (linear-time
            SA-IS).
    """

    def __init__(self, data: bytes, alpha: int = 32, stats: Optional[AccessStats] = None,
                 sa_algorithm: str = "doubling") -> None:
        if alpha < 1:
            raise ValueError("alpha must be >= 1")
        if sa_algorithm not in ("doubling", "sais"):
            raise ValueError("sa_algorithm must be 'doubling' or 'sais'")
        data = bytes(data)  # zipg: owned-copy
        if SENTINEL in data:
            raise ValueError("input data must not contain the sentinel byte 0x00")
        self._alpha = alpha
        self._input_size = len(data)
        self.stats = stats if stats is not None else AccessStats()

        text = data + bytes([SENTINEL])
        n = len(text)
        self._n = n
        if sa_algorithm == "sais":
            from repro.succinct.sais import build_suffix_array_sais

            suffix_array = build_suffix_array_sais(text)
        else:
            suffix_array = build_suffix_array(text)
        isa = inverse_permutation(suffix_array)
        self._npa = NextPointerArray.from_text(text, suffix_array, isa)

        # Value-based SA sampling: keep rows whose SA value % alpha == 0.
        sampled_rows = np.nonzero(suffix_array % alpha == 0)[0]
        self._sampled_row_marks = BitVector.from_indices(n, sampled_rows)
        self._sa_samples = suffix_array[sampled_rows].copy()
        # Position-based ISA sampling: ISA of text positions 0, alpha, 2*alpha...
        self._isa_samples = isa[np.arange(0, n, alpha)].copy()
        self._init_cache_state()

    def _init_cache_state(self) -> None:
        from repro.perf.cache import new_cache_tag

        self._cache = None
        self._cache_epoch_of: Optional[Callable[[], int]] = None
        self._coalescer = None
        self._cache_tag = new_cache_tag()

    # ------------------------------------------------------------------
    # Hot-set cache (repro.perf)
    # ------------------------------------------------------------------

    def attach_cache(
        self,
        cache: "HotSetCache",
        epoch_of: Optional[Callable[[], int]] = None,
        coalesce_window_s: float = 0.0,
    ) -> None:
        """Front ``extract``/``search`` with a :class:`HotSetCache`.

        Args:
            cache: the shared :class:`repro.perf.HotSetCache`.
            epoch_of: callable returning the owning structure's current
                epoch; embedded in every key so mutations invalidate in
                O(1). ``None`` pins the epoch to 0 (this file's own
                structures are immutable).
            coalesce_window_s: when > 0, concurrent cache-missed
                extracts are coalesced into one lockstep
                ``extract_batch`` kernel call.
        """
        from repro.perf.coalesce import BatchCoalescer

        self._cache = cache
        self._cache_epoch_of = epoch_of
        if coalesce_window_s > 0:
            self._coalescer = BatchCoalescer(
                self._extract_batch_kernel, window_s=coalesce_window_s
            )
        else:
            self._coalescer = None

    def detach_cache(self) -> None:
        self._cache = None
        self._cache_epoch_of = None
        self._coalescer = None

    def _cache_epoch(self) -> int:
        return self._cache_epoch_of() if self._cache_epoch_of is not None else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Length of the original input (excluding the sentinel)."""
        return self._input_size

    @property
    def alpha(self) -> int:
        return self._alpha

    def original_size_bytes(self) -> int:
        """Size of the uncompressed input."""
        return self._input_size

    def serialized_size_bytes(self) -> int:
        """Bytes the compressed representation occupies when persisted."""
        if self._n == 0:
            return 0
        value_bits = max(1, (self._n - 1).bit_length())
        sample_bytes = (
            (len(self._sa_samples) + len(self._isa_samples)) * value_bits + 7
        ) // 8
        return (
            sample_bytes
            + self._sampled_row_marks.serialized_size_bytes()
            + self._npa.serialized_size_bytes()
        )

    def compression_ratio(self) -> float:
        """Uncompressed size / compressed size (> 1 means smaller)."""
        compressed = self.serialized_size_bytes()
        return self._input_size / compressed if compressed else float("inf")

    # ------------------------------------------------------------------
    # Core lookups
    # ------------------------------------------------------------------

    # zipg: scalar-ok  (the scalar primitive the batched kernels amortize)
    def _lookup_sa(self, row: int) -> int:
        """SA value of ``row`` via NPA walk to the nearest sampled row."""
        steps = 0
        current = row
        while not self._sampled_row_marks[current]:
            current = self._npa[current]
            steps += 1
        self.stats.npa_hops += steps
        rank = self._sampled_row_marks.rank1(current)
        value = int(self._sa_samples[rank])
        return (value - steps) % self._n

    # zipg: scalar-ok  (at most alpha hops to the sampled anchor)
    def _lookup_isa(self, position: int) -> int:
        """Row whose suffix starts at text ``position``."""
        anchor, remainder = divmod(position, self._alpha)
        row = int(self._isa_samples[anchor])
        npa_list = self._npa._npa_list
        for _ in range(remainder):
            row = npa_list[row]
        self.stats.npa_hops += remainder
        return row

    def _lookup_sa_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_lookup_sa`: SA values for many rows.

        All rows advance in lockstep; a row drops out of the active set
        as soon as it reaches a sampled row. At most ``alpha`` rounds
        (value-based sampling guarantees a sampled row within ``alpha``
        hops), each a numpy gather over the still-active rows.
        """
        rows = np.asarray(rows, dtype=np.int64)
        marks = self._sampled_row_marks
        # Expand every row to its next `alpha` NPA successors at once
        # (value-based sampling guarantees a sampled row within alpha
        # hops), then pick each row's first sampled successor.
        matrix = self._npa.expand_rows(rows, self._alpha)
        sampled = marks.get_many(matrix.ravel()).reshape(matrix.shape)
        steps = np.argmax(sampled, axis=0)
        landed = matrix[steps, np.arange(len(rows))]
        ranks = marks.rank1_many(landed)
        values = self._sa_samples[ranks]
        hops = int(steps.sum())
        self.stats.npa_hops += hops
        self.stats.npa_batched_hops += hops
        self.stats.batch_kernel_calls += 1
        return (values - steps) % self._n

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------

    @obs.traced("succinct.extract", layer="succinct")
    def extract(self, offset: int, length: int) -> bytes:
        """Return ``length`` bytes of the original input starting at ``offset``.

        Runs on the compressed representation. Long extracts use the
        vectorized kernel: every ``alpha``-strided sampled-ISA anchor
        covering the range is gathered at once and all anchors walk the
        NPA in lockstep, so the Python-level loop runs ``alpha`` times
        regardless of ``length`` instead of once per byte.
        """
        length = self._check_extract(offset, length)
        cache = self._cache
        if cache is None:
            return self._extract_uncached(offset, length)
        key = ("sf", self._cache_tag, self._cache_epoch(), "x", offset, length)
        return cache.get_or_load(
            key, lambda: self._extract_uncached(offset, length)
        )

    def _extract_uncached(self, offset: int, length: int) -> bytes:
        """The pre-cache ``extract`` body (``length`` already checked)."""
        self.stats.random_accesses += 1
        self.stats.sequential_bytes += length
        if length == 0:
            return b""
        if length <= _SCALAR_EXTRACT_CUTOFF:
            return self._extract_scalar_body(offset, length)
        if self._coalescer is not None:
            return self._coalescer.submit((offset, length))
        return self._extract_batched_body(offset, length)

    def extract_scalar(self, offset: int, length: int) -> bytes:
        """Reference scalar ``extract`` (one Python-level NPA hop per
        byte). Kept for kernel-parity tests and as the micro-benchmark
        baseline; byte-identical to :meth:`extract`."""
        length = self._check_extract(offset, length)
        self.stats.random_accesses += 1
        self.stats.sequential_bytes += length
        if length == 0:
            return b""
        return self._extract_scalar_body(offset, length)

    def _check_extract(self, offset: int, length: int) -> int:
        if length < 0:
            raise ValueError("length must be non-negative")
        if not 0 <= offset <= self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size}]")
        return min(length, self._input_size - offset)

    # zipg: scalar-ok  (the reference body behind the scalar cutoff)
    def _extract_scalar_body(self, offset: int, length: int) -> bytes:
        row = self._lookup_isa(offset)
        # Hot path: bind the NPA internals locally (one attribute
        # lookup per extracted byte otherwise dominates).
        npa_list = self._npa._npa_list
        char_of_row = self._npa.char_of_row
        out = bytearray()
        append = out.append
        for _ in range(length):
            append(char_of_row(row))
            row = npa_list[row]
        self.stats.npa_hops += length
        return bytes(out)  # zipg: owned-copy

    def _anchor_span(self, offset: int, length: int):
        """Anchor range covering ``[offset, offset + length)`` and the
        lockstep depth it needs: ``(first_anchor, last_anchor, head,
        steps)`` where ``head`` is the offset of the first wanted byte
        inside the first anchor's segment."""
        alpha = self._alpha
        first_anchor, head = divmod(offset, alpha)
        last_anchor = (offset + length - 1) // alpha
        steps = head + length if last_anchor == first_anchor else alpha
        return first_anchor, last_anchor, head, steps

    def _extract_batched_body(self, offset: int, length: int) -> bytes:
        first_anchor, last_anchor, head, steps = self._anchor_span(offset, length)
        rows = self._isa_samples[first_anchor : last_anchor + 1]
        chars = self._npa.walk_collect(rows, steps)
        hops = len(rows) * (steps - 1)
        self.stats.npa_hops += hops
        self.stats.npa_batched_hops += hops
        self.stats.batch_kernel_calls += 1
        # With more than one anchor ``steps == alpha``, so the flattened
        # matrix is the contiguous text from the first anchor position.
        return chars.ravel()[head : head + length].tobytes()  # zipg: owned-copy

    @obs.traced("succinct.extract_batch", layer="succinct")
    def extract_batch(self, requests: Sequence[Tuple[int, int]]) -> List[bytes]:
        """Extract many ``(offset, length)`` substrings in one lockstep
        NPA walk.

        All anchor rows of all requests advance together, so the
        Python-level loop depth stays ``alpha`` no matter how many
        substrings are decoded -- the batch analogue of amortized batch
        decoding in compressed-graph kernels. Returns the substrings in
        request order; byte-identical to per-request :meth:`extract`.
        """
        clean = []
        for offset, length in requests:
            clean.append((offset, self._check_extract(offset, length)))
        cache = self._cache
        if cache is None:
            return self._extract_batch_uncached(clean)
        # Per-request lookup; only the misses go through one kernel call.
        tag = self._cache_tag
        epoch = self._cache_epoch()
        results: List[bytes] = [b""] * len(clean)
        missing: List[int] = []
        for index, (offset, length) in enumerate(clean):
            hit, value = cache.get(("sf", tag, epoch, "x", offset, length))
            if hit:
                results[index] = value
            else:
                missing.append(index)
        if missing:
            fetched = self._extract_batch_uncached([clean[i] for i in missing])
            for index, value in zip(missing, fetched):
                offset, length = clean[index]
                cache.put(("sf", tag, epoch, "x", offset, length), value)
                results[index] = value
        return results

    def _extract_batch_uncached(self, clean: Sequence[Tuple[int, int]]) -> List[bytes]:
        """The pre-cache ``extract_batch`` body (lengths already checked)."""
        self.stats.random_accesses += len(clean)
        self.stats.sequential_bytes += sum(length for _, length in clean)
        return self._extract_batch_kernel(clean)

    def _extract_batch_kernel(self, clean: Sequence[Tuple[int, int]]) -> List[bytes]:
        """One lockstep walk over every non-empty request (no access
        accounting: callers meter themselves, so the coalescer can
        route through here without double counting)."""
        results: List[bytes] = [b""] * len(clean)
        segments = []
        spans = []  # (result slot, anchor offset in the big row array, head, length)
        cursor = 0
        steps = 1
        for index, (offset, length) in enumerate(clean):
            if length == 0:
                continue
            first_anchor, last_anchor, head, need = self._anchor_span(offset, length)
            segment = self._isa_samples[first_anchor : last_anchor + 1]
            segments.append(segment)
            spans.append((index, cursor, len(segment), head, length))
            cursor += len(segment)
            steps = max(steps, need)
        if not spans:
            return results
        rows = np.concatenate(segments)
        chars = self._npa.walk_collect(rows, steps)
        hops = len(rows) * (steps - 1)
        self.stats.npa_hops += hops
        self.stats.npa_batched_hops += hops
        self.stats.batch_kernel_calls += 1
        for index, start, count, head, length in spans:
            # Multi-anchor requests force steps == alpha, making each
            # request's flattened block contiguous text; single-anchor
            # requests only read their first row.
            block = chars[start : start + count]
            results[index] = block.ravel()[head : head + length].tobytes()  # zipg: owned-copy
        return results

    def char_at_batch(self, offsets: Sequence[int]) -> np.ndarray:
        """Byte values at many offsets (vectorized :meth:`char_at`).

        Returns a ``uint8`` array aligned with ``offsets``.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return np.empty(0, dtype=np.uint8)
        if int(offsets.min()) < 0 or int(offsets.max()) >= self._input_size:
            raise IndexError(
                f"offset out of range [0, {self._input_size}) in batch"
            )
        self.stats.random_accesses += len(offsets)
        anchors, remainders = np.divmod(offsets, self._alpha)
        rows = self._npa.walk_varying(self._isa_samples[anchors], remainders)
        hops = int(remainders.sum())
        self.stats.npa_hops += hops
        self.stats.npa_batched_hops += hops
        self.stats.batch_kernel_calls += 1
        return self._npa.chars_of_rows(rows)

    def char_at(self, offset: int) -> int:
        """Byte value at ``offset`` of the original input."""
        if not 0 <= offset < self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size})")
        self.stats.random_accesses += 1
        return self._npa.char_of_row(self._lookup_isa(offset))

    # zipg: scalar-ok  (terminator position unknown: inherently sequential)
    def extract_until(self, offset: int, terminator: int, limit: Optional[int] = None) -> bytes:
        """Extract from ``offset`` up to (not including) ``terminator``.

        Stops at end-of-file if the terminator never occurs. ``limit``
        bounds the number of bytes examined.
        """
        if not 0 <= offset <= self._input_size:
            raise IndexError(f"offset {offset} out of range [0, {self._input_size}]")
        self.stats.random_accesses += 1
        remaining = self._input_size - offset
        if limit is not None:
            remaining = min(remaining, limit)
        if remaining <= 0:
            return b""
        row = self._lookup_isa(offset)
        # Same hot-path local binding as the scalar extract body: one
        # attribute lookup per byte otherwise dominates.
        npa_list = self._npa._npa_list
        char_of_row = self._npa.char_of_row
        out = bytearray()
        append = out.append
        for _ in range(remaining):
            char = char_of_row(row)
            if char == terminator:
                break
            append(char)
            row = npa_list[row]
        self.stats.npa_hops += len(out)
        self.stats.sequential_bytes += len(out)
        return bytes(out)  # zipg: owned-copy

    def _pattern_row_range(self, pattern: bytes) -> tuple:
        """Row range ``[low, high)`` of suffixes prefixed by ``pattern``."""
        if not pattern:
            return (0, self._n)
        if SENTINEL in pattern:
            raise ValueError("patterns must not contain the sentinel byte 0x00")
        low, high = self._npa.bucket_range(pattern[-1])
        for char in reversed(pattern[:-1]):
            if low >= high:
                return (0, 0)
            low, high = self._npa.refine_backward(char, low, high)
        return (low, high)

    @obs.traced("succinct.count", layer="succinct")
    def count(self, pattern: bytes) -> int:
        """Number of occurrences of ``pattern`` in the input."""
        self.stats.searches += 1
        low, high = self._pattern_row_range(bytes(pattern))  # zipg: owned-copy
        return high - low

    @obs.traced("succinct.search", layer="succinct")
    def search(self, pattern: bytes) -> np.ndarray:
        """Offsets (ascending) where ``pattern`` occurs in the input.

        The whole matching row range ``[low, high)`` is resolved to SA
        values in one batched lockstep walk instead of a per-row
        ``_lookup_sa`` loop.
        """
        pattern = bytes(pattern)  # zipg: owned-copy
        cache = self._cache
        if cache is None:
            return self._search_uncached(pattern)

        def _load() -> np.ndarray:
            result = self._search_uncached(pattern)
            # The same array object is handed to every future hit, so
            # freeze it: a caller mutating a shared result would
            # corrupt everyone else's view.
            result.setflags(write=False)
            return result

        key = ("sf", self._cache_tag, self._cache_epoch(), "s", pattern)
        return cache.get_or_load(key, _load)

    def _search_uncached(self, pattern: bytes) -> np.ndarray:
        """The pre-cache ``search`` body."""
        self.stats.searches += 1
        low, high = self._pattern_row_range(pattern)
        count = high - low
        self.stats.random_accesses += count
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if count <= _SCALAR_SEARCH_CUTOFF:
            # Tiny result sets: kernel setup costs more than it saves.
            offsets = sorted(self._lookup_sa(row) for row in range(low, high))  # zipg: ignore[HOT001]
            return np.asarray(offsets, dtype=np.int64)
        offsets = self._lookup_sa_batch(np.arange(low, high, dtype=np.int64))
        return np.sort(offsets)

    # zipg: scalar-ok  (reference baseline for kernel-parity tests)
    def search_scalar(self, pattern: bytes) -> np.ndarray:
        """Reference scalar ``search`` (per-row ``_lookup_sa`` loop);
        byte-identical results to :meth:`search`."""
        self.stats.searches += 1
        low, high = self._pattern_row_range(bytes(pattern))  # zipg: owned-copy
        offsets = [self._lookup_sa(row) for row in range(low, high)]
        self.stats.random_accesses += high - low
        return np.asarray(sorted(offsets), dtype=np.int64)

    def decompress(self) -> bytes:
        """Reconstruct the full original input (diagnostic helper)."""
        return self.extract(0, self._input_size)

    # ------------------------------------------------------------------
    # Binary serialization (§4.1: persisted structures are loaded, not
    # reconstructed, at startup)
    # ------------------------------------------------------------------

    #: Self-describing codec tag written into the section framing
    #: (see :mod:`repro.succinct.encodings`).
    encoding_name = "succinct"

    def sections(self) -> dict:
        """Write-side sections (samples, row bitmap, NPA + bucket
        directory) -- no text, no suffix array. Array payloads are
        zero-copy chunks over the live structures, suitable for
        :func:`repro.succinct.serialize.write_sections`."""
        from repro.succinct.serialize import FORMAT_SECTION, array_chunks, pack_ints

        npa, bucket_chars, bucket_starts = self._npa.arrays_for_write()
        return {
            FORMAT_SECTION: self.encoding_name.encode("ascii"),
            "meta": pack_ints(self._alpha, self._input_size, self._n),
            "sa_samples": array_chunks(self._sa_samples),
            "isa_samples": array_chunks(self._isa_samples),
            "row_marks": array_chunks(self._sampled_row_marks.blocks_for_write()),
            "npa": array_chunks(npa),
            "bucket_chars": array_chunks(bucket_chars),
            "bucket_starts": array_chunks(bucket_starts),
        }

    def to_bytes(self) -> bytes:
        """Serialize the compressed structures to one owned blob."""
        from repro.succinct.serialize import pack_sections

        return pack_sections(self.sections())

    @classmethod
    def from_sections(
        cls, sections: dict, stats: Optional[AccessStats] = None
    ) -> "SuccinctFile":
        """Reconstruct a file from unpacked sections **without copying**:
        every array is an ``np.frombuffer`` view over the caller-owned
        buffer, so an mmap-backed load is O(1) and payload pages fault
        only when a query first touches them."""
        from repro.succinct.serialize import unpack_array, unpack_ints

        alpha, input_size, n = unpack_ints(sections["meta"])
        instance = cls.__new__(cls)
        instance._alpha = alpha
        instance._input_size = input_size
        instance._n = n
        instance.stats = stats if stats is not None else AccessStats()
        instance._sa_samples = unpack_array(sections["sa_samples"])
        instance._isa_samples = unpack_array(sections["isa_samples"])
        instance._sampled_row_marks = BitVector.from_blocks(
            n, unpack_array(sections["row_marks"]), copy=False
        )
        instance._npa = NextPointerArray(
            unpack_array(sections["npa"]),
            unpack_array(sections["bucket_chars"]),
            unpack_array(sections["bucket_starts"]),
        )
        instance._init_cache_state()
        return instance

    @classmethod
    def from_bytes(cls, blob: bytes, stats: Optional[AccessStats] = None) -> "SuccinctFile":
        """Reconstruct a file from :meth:`to_bytes` output without
        re-running suffix-array construction."""
        from repro.succinct.serialize import unpack_sections

        return cls.from_sections(unpack_sections(blob), stats=stats)

"""Pluggable flat-file codecs: the ``ShardEncoding`` interface.

ZipG's layout classes (NodeFile/EdgeFile) serialize records into one
flat file and push all storage concerns -- compression, random access,
substring search -- into the codec that stores that file. This module
is the seam: a :class:`ShardEncoding` is anything that can *encode* a
byte string and then answer ``extract``/``search``/``count`` on the
encoded form, and the registry maps the self-describing format tag in
the section framing (:data:`repro.succinct.serialize.FORMAT_SECTION`)
back to the codec that wrote it.

Registered codecs:

* ``"succinct"`` -- :class:`repro.succinct.succinct_file.SuccinctFile`,
  the paper's compressed representation (sampled SA/ISA + NPA).
* ``"offsets"`` -- :class:`repro.succinct.offsets.OffsetArrayFile`,
  a Log(Graph)-style fixed-width bit-packed array (PAPERS.md): larger
  than Succinct but with O(length) extracts and no NPA walks. The
  Fig. 5/6 benches ablate the two.

Blobs written before the format tag existed (store format v3) carry no
tag section and decode as ``"succinct"``.
"""

from __future__ import annotations

from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.succinct.serialize import FORMAT_SECTION, unpack_sections
from repro.succinct.stats import AccessStats


@runtime_checkable
class ShardEncoding(Protocol):
    """What a flat-file codec must provide.

    Build side: ``cls(data, alpha=..., stats=...)`` encodes raw bytes.
    Load side: ``cls.from_sections(sections, stats=...)`` rebuilds the
    codec from unpacked framing sections **without copying** -- every
    array must be a view over the caller-owned buffer so mmap-backed
    loads stay O(1).
    """

    encoding_name: str
    stats: AccessStats

    def __len__(self) -> int: ...

    def extract(self, offset: int, length: int) -> bytes: ...

    def extract_batch(
        self, requests: Sequence[Tuple[int, int]]
    ) -> List[bytes]: ...

    def extract_until(
        self, offset: int, terminator: int, limit: Optional[int] = None
    ) -> bytes: ...

    def char_at(self, offset: int) -> int: ...

    def char_at_batch(self, offsets: Sequence[int]) -> np.ndarray: ...

    def count(self, pattern: bytes) -> int: ...

    def search(self, pattern: bytes) -> np.ndarray: ...

    def decompress(self) -> bytes: ...

    def original_size_bytes(self) -> int: ...

    def serialized_size_bytes(self) -> int: ...

    def compression_ratio(self) -> float: ...

    def sections(self) -> dict: ...

    def to_bytes(self) -> bytes: ...


_REGISTRY: Dict[str, type] = {}


def register_encoding(cls: type) -> type:
    """Register a codec class under its ``encoding_name`` tag.

    Usable as a decorator; returns ``cls`` unchanged.
    """
    name = getattr(cls, "encoding_name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"{cls.__name__} has no encoding_name tag")
    _REGISTRY[name] = cls
    return cls


def encoding_class(name: str) -> type:
    """The codec class registered under ``name``."""
    _ensure_builtin_encodings()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown shard encoding {name!r} (registered: {known})"
        ) from None


def encoding_names() -> Tuple[str, ...]:
    """All registered codec tags, sorted."""
    _ensure_builtin_encodings()
    return tuple(sorted(_REGISTRY))


def build_flat_file(
    data: bytes,
    alpha: int = 32,
    stats: Optional[AccessStats] = None,
    encoding: str = "succinct",
) -> "ShardEncoding":
    """Encode ``data`` with the named codec."""
    cls = encoding_class(encoding)
    return cls(data, alpha=alpha, stats=stats)


def decode_sections(
    sections: dict, stats: Optional[AccessStats] = None
) -> "ShardEncoding":
    """Rebuild a codec from unpacked sections, dispatching on the
    self-describing format tag (absent tag = pre-v4 blob = Succinct)."""
    tag = sections.get(FORMAT_SECTION)
    name = bytes(tag).decode("ascii") if tag is not None else "succinct"  # zipg: owned-copy
    cls = encoding_class(name)
    return cls.from_sections(sections, stats=stats)


def decode_flat_file(
    blob: Union[bytes, bytearray, memoryview],
    stats: Optional[AccessStats] = None,
) -> "ShardEncoding":
    """Rebuild a codec from a framed blob without copying payloads."""
    return decode_sections(unpack_sections(blob), stats=stats)


def _ensure_builtin_encodings() -> None:
    """Import-register the built-in codecs exactly once."""
    if "succinct" not in _REGISTRY:
        from repro.succinct.succinct_file import SuccinctFile

        register_encoding(SuccinctFile)
    if "offsets" not in _REGISTRY:
        from repro.succinct.offsets import OffsetArrayFile

        register_encoding(OffsetArrayFile)

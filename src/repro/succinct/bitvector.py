"""Rank/select bit vector.

A compact bitmap with O(1) amortized ``rank1`` via per-block popcount
prefix sums, used by :class:`~repro.succinct.succinct_file.SuccinctFile`
to mark sampled suffix-array rows and by ZipG's deletion bitmaps.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_BLOCK_BITS = 64


class BitVector:
    """Fixed-length mutable bit vector with rank and select support.

    Bits are stored packed in a ``uint64`` numpy array. Rank structures
    are built lazily and invalidated on mutation, so the vector can be
    used both as a static rank/select directory (sampled-row marks) and
    as a mutable bitmap (lazy deletes).
    """

    def __init__(self, num_bits: int) -> None:
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        self._num_bits = num_bits
        num_blocks = (num_bits + _BLOCK_BITS - 1) // _BLOCK_BITS
        self._blocks = np.zeros(num_blocks, dtype=np.uint64)
        self._rank_prefix: np.ndarray | None = None

    @classmethod
    def from_blocks(
        cls, num_bits: int, blocks: np.ndarray, copy: bool = True
    ) -> "BitVector":
        """Rebuild a vector from its packed ``uint64`` block array
        (deserialization path).

        With ``copy=False`` the vector adopts ``blocks`` as-is -- for
        the zero-copy mmap load path, where the blocks are a read-only
        ``np.frombuffer`` view and the vector is never mutated (sampled
        row marks). Mutable bitmaps (lazy deletes) must keep the
        default owned copy.
        """
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        blocks = np.asarray(blocks, dtype=np.uint64)
        expected = (num_bits + _BLOCK_BITS - 1) // _BLOCK_BITS
        if blocks.shape != (expected,):
            raise ValueError("block array does not match num_bits")
        # Bypass __init__: allocating-and-discarding a zeroed block
        # array would make every mmap-backed load O(n).
        vec = cls.__new__(cls)
        vec._num_bits = num_bits
        vec._blocks = blocks.copy() if copy else blocks  # zipg: owned-copy
        vec._rank_prefix = None
        return vec

    @property
    def blocks(self) -> np.ndarray:
        """The packed ``uint64`` bit blocks (an owned copy)."""
        return self._blocks.copy()  # zipg: owned-copy

    def blocks_for_write(self) -> np.ndarray:
        """The internal block array, *not* copied.

        Write-side zero-copy serialization only -- callers must treat
        the result as read-only.
        """
        return self._blocks

    @classmethod
    def from_indices(cls, num_bits: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector of ``num_bits`` bits with ``indices`` set."""
        vec = cls(num_bits)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            if indices.min() < 0 or indices.max() >= num_bits:
                raise IndexError("bit index out of range")
            blocks = indices // _BLOCK_BITS
            offsets = (indices % _BLOCK_BITS).astype(np.uint64)
            np.bitwise_or.at(vec._blocks, blocks, np.uint64(1) << offsets)
        return vec

    def __len__(self) -> int:
        return self._num_bits

    def _check(self, index: int) -> None:
        if not 0 <= index < self._num_bits:
            raise IndexError(f"bit index {index} out of range [0, {self._num_bits})")

    def __getitem__(self, index: int) -> bool:
        self._check(index)
        block, offset = divmod(index, _BLOCK_BITS)
        return bool((self._blocks[block] >> np.uint64(offset)) & np.uint64(1))

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check(index)
        block, offset = divmod(index, _BLOCK_BITS)
        self._blocks[block] |= np.uint64(1) << np.uint64(offset)
        self._rank_prefix = None

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check(index)
        block, offset = divmod(index, _BLOCK_BITS)
        self._blocks[block] &= ~(np.uint64(1) << np.uint64(offset))
        self._rank_prefix = None

    def _ensure_rank(self) -> None:
        if self._rank_prefix is None:
            counts = _popcount64(self._blocks)
            self._rank_prefix = np.concatenate(
                ([0], np.cumsum(counts, dtype=np.int64))
            )

    def count(self) -> int:
        """Total number of set bits."""
        self._ensure_rank()
        return int(self._rank_prefix[-1])

    def rank1(self, index: int) -> int:
        """Number of set bits in ``[0, index)``."""
        if not 0 <= index <= self._num_bits:
            raise IndexError(f"rank index {index} out of range [0, {self._num_bits}]")
        if index == 0:
            return 0
        self._ensure_rank()
        block, offset = divmod(index, _BLOCK_BITS)
        total = int(self._rank_prefix[block])
        if offset:
            mask = (np.uint64(1) << np.uint64(offset)) - np.uint64(1)
            total += int(_popcount_scalar(self._blocks[block] & mask))
        return total

    def get_many(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized ``__getitem__``: boolean array of bit values.

        No bounds checking beyond numpy's own; callers pass indices
        they already know are in range (query-kernel hot path).
        """
        indices = np.asarray(indices, dtype=np.int64)
        blocks = self._blocks[indices // _BLOCK_BITS]
        offsets = (indices % _BLOCK_BITS).astype(np.uint64)
        return ((blocks >> offsets) & np.uint64(1)).astype(bool)

    def rank1_many(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank1` over an index array."""
        indices = np.asarray(indices, dtype=np.int64)
        self._ensure_rank()
        block = indices // _BLOCK_BITS
        offset = (indices % _BLOCK_BITS).astype(np.uint64)
        totals = self._rank_prefix[block]
        mask = (np.uint64(1) << offset) - np.uint64(1)
        partial = _popcount64(self._blocks[block] & mask)
        return totals + partial.astype(np.int64)

    def rank0(self, index: int) -> int:
        """Number of zero bits in ``[0, index)``."""
        return index - self.rank1(index)

    def select1(self, rank: int) -> int:
        """Index of the ``rank``-th (0-based) set bit."""
        self._ensure_rank()
        total = int(self._rank_prefix[-1])
        if not 0 <= rank < total:
            raise IndexError(f"select rank {rank} out of range [0, {total})")
        # Binary search over block prefix sums, then scan within the block.
        block = int(np.searchsorted(self._rank_prefix, rank + 1, side="left")) - 1
        remaining = rank - int(self._rank_prefix[block])
        word = int(self._blocks[block])
        for offset in range(_BLOCK_BITS):
            if (word >> offset) & 1:
                if remaining == 0:
                    return block * _BLOCK_BITS + offset
                remaining -= 1
        raise AssertionError("select1 internal inconsistency")

    def set_indices(self) -> np.ndarray:
        """Indices of all set bits, ascending."""
        out = []
        for block_index, word in enumerate(self._blocks):
            word = int(word)
            base = block_index * _BLOCK_BITS
            while word:
                low = word & -word
                out.append(base + low.bit_length() - 1)
                word ^= low
        return np.asarray(out, dtype=np.int64)

    def serialized_size_bytes(self) -> int:
        """Bytes needed to persist the raw bitmap (no rank directory)."""
        return self._blocks.nbytes


def _popcount64(blocks: np.ndarray) -> np.ndarray:
    """Vectorized 64-bit popcount."""
    x = blocks.copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return (x * h01) >> np.uint64(56)


def _popcount_scalar(word: np.uint64) -> int:
    return bin(int(word)).count("1")

"""Suffix array construction (prefix doubling, vectorized with numpy).

The suffix array and its inverse are the scaffolding from which the
sampled Succinct structures are derived; the full arrays are discarded
after construction (only samples and the NPA are retained at query
time).
"""

from __future__ import annotations

import numpy as np


def build_suffix_array(data: bytes) -> np.ndarray:
    """Return the suffix array of ``data`` as an int64 numpy array.

    Uses Manber-Myers prefix doubling with numpy ``lexsort``:
    O(n log^2 n) overall, with every pass fully vectorized. Ties are
    resolved consistently, so the result is the unique suffix array of
    the input (no sentinel is appended here; callers that need a unique
    smallest suffix append their own terminal byte).
    """
    n = len(data)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rank = np.frombuffer(bytes(data), dtype=np.uint8).astype(np.int64)  # zipg: owned-copy
    shift = 1
    while True:
        # Secondary key: rank of the suffix `shift` positions ahead, -1 past end.
        key2 = np.full(n, -1, dtype=np.int64)
        if shift < n:
            key2[: n - shift] = rank[shift:]
        order = np.lexsort((key2, rank))
        changed = (rank[order][1:] != rank[order][:-1]) | (
            key2[order][1:] != key2[order][:-1]
        )
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.concatenate(([0], np.cumsum(changed, dtype=np.int64)))
        rank = new_rank
        if rank[order[-1]] == n - 1:
            return order.astype(np.int64)
        shift *= 2


def inverse_permutation(permutation: np.ndarray) -> np.ndarray:
    """Inverse of a permutation array (ISA from SA, and vice versa)."""
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(len(permutation), dtype=permutation.dtype)
    return inverse

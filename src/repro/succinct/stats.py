"""Access instrumentation shared by all storage engines.

Every storage engine in this repository (Succinct-backed shards, the
Neo4j-like pointer store, the Titan-like KV store, the LogStore) counts
the logical *storage touches* it performs. The benchmark memory model
(:mod:`repro.bench.memory_model`) converts those touches into simulated
latency, classifying each as in-memory or spilled to SSD depending on
the engine's measured footprint versus the configured memory budget.

Thread safety: the plain ``stats.counter += n`` increments on the hot
paths are *not* atomic, so a single :class:`AccessStats` instance must
only be mutated from one thread at a time. The parallel fan-out
executor (:class:`repro.core.executor.ShardExecutor`) enforces this by
grouping work items that share a stats object into one serial task;
cross-thread aggregation goes through the locked :meth:`merge`,
:meth:`add`, :meth:`snapshot` and :meth:`reset` methods.
"""
# zipg: single-writer

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class AccessStats:
    """Counters for logical storage operations.

    Attributes:
        random_accesses: point lookups into a storage structure. In a
            deployed system each is a potential page fetch; this is the
            unit the memory model charges SSD latency against.
        sequential_bytes: bytes read sequentially (scans, extracts).
        npa_hops: Succinct NPA dereferences (CPU cost of operating on
            the compressed representation; proportional to ``alpha``).
            Counts *logical* hops regardless of whether they were issued
            one at a time or through a vectorized kernel.
        npa_batched_hops: the subset of ``npa_hops`` performed inside a
            vectorized (numpy lockstep) kernel rather than a scalar
            Python loop. ``npa_hops - npa_batched_hops`` is the scalar
            residue; a well-batched workload drives it toward zero.
        batch_kernel_calls: number of vectorized kernel invocations
            (one batched ``extract``/``search``/``extract_batch`` call
            issues one or two of these, amortizing many hops each).
        searches: substring/index search operations issued.
        writes: record appends/mutations.
        decompressed_bytes: bytes run through block decompression (CPU
            cost of compressed baselines such as Titan-Compressed).
    """

    random_accesses: int = 0
    sequential_bytes: int = 0
    npa_hops: int = 0
    npa_batched_hops: int = 0
    batch_kernel_calls: int = 0
    searches: int = 0
    writes: int = 0
    decompressed_bytes: int = 0

    def __post_init__(self) -> None:
        # Not a dataclass field: excluded from eq/repr, never serialized.
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.random_accesses = 0
            self.sequential_bytes = 0
            self.npa_hops = 0
            self.npa_batched_hops = 0
            self.batch_kernel_calls = 0
            self.searches = 0
            self.writes = 0
            self.decompressed_bytes = 0

    def snapshot(self) -> "AccessStats":
        """A copy of the current counter values."""
        with self._lock:
            return AccessStats(
                random_accesses=self.random_accesses,
                sequential_bytes=self.sequential_bytes,
                npa_hops=self.npa_hops,
                npa_batched_hops=self.npa_batched_hops,
                batch_kernel_calls=self.batch_kernel_calls,
                searches=self.searches,
                writes=self.writes,
                decompressed_bytes=self.decompressed_bytes,
            )

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return AccessStats(
            random_accesses=self.random_accesses - earlier.random_accesses,
            sequential_bytes=self.sequential_bytes - earlier.sequential_bytes,
            npa_hops=self.npa_hops - earlier.npa_hops,
            npa_batched_hops=self.npa_batched_hops - earlier.npa_batched_hops,
            batch_kernel_calls=self.batch_kernel_calls - earlier.batch_kernel_calls,
            searches=self.searches - earlier.searches,
            writes=self.writes - earlier.writes,
            decompressed_bytes=self.decompressed_bytes - earlier.decompressed_bytes,
        )

    def merge(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into this instance (thread-safe).

        ``other`` is snapshotted under *its* lock first, so a concurrent
        writer on ``other`` cannot produce a torn read; the two locks
        are never held together, so no acquisition-order edge exists.
        """
        source = other.snapshot()
        with self._lock:
            self.random_accesses += source.random_accesses
            self.sequential_bytes += source.sequential_bytes
            self.npa_hops += source.npa_hops
            self.npa_batched_hops += source.npa_batched_hops
            self.batch_kernel_calls += source.batch_kernel_calls
            self.searches += source.searches
            self.writes += source.writes
            self.decompressed_bytes += source.decompressed_bytes

    def add(self, **deltas: int) -> None:
        """Atomically add named counter deltas (for cross-thread use)."""
        with self._lock:
            for name, amount in deltas.items():
                setattr(self, name, getattr(self, name) + amount)

    def to_metrics(self, prefix: str = "") -> "dict[str, float]":
        """The counters as a flat ``{name: value}`` mapping, snapshotted
        under the lock -- the shape metric-registry collectors emit."""
        source = self.snapshot()
        return {
            f"{prefix}random_accesses_total": float(source.random_accesses),
            f"{prefix}sequential_bytes_total": float(source.sequential_bytes),
            f"{prefix}npa_hops_total": float(source.npa_hops),
            f"{prefix}npa_batched_hops_total": float(source.npa_batched_hops),
            f"{prefix}batch_kernel_calls_total": float(source.batch_kernel_calls),
            f"{prefix}searches_total": float(source.searches),
            f"{prefix}writes_total": float(source.writes),
            f"{prefix}decompressed_bytes_total": float(source.decompressed_bytes),
        }

    @property
    def scalar_npa_hops(self) -> int:
        """NPA hops issued one at a time outside any batched kernel."""
        return self.npa_hops - self.npa_batched_hops

    @property
    def total_touches(self) -> int:
        """All operations that may touch storage."""
        return self.random_accesses + self.searches + self.writes

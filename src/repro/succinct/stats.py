"""Access instrumentation shared by all storage engines.

Every storage engine in this repository (Succinct-backed shards, the
Neo4j-like pointer store, the Titan-like KV store, the LogStore) counts
the logical *storage touches* it performs. The benchmark memory model
(:mod:`repro.bench.memory_model`) converts those touches into simulated
latency, classifying each as in-memory or spilled to SSD depending on
the engine's measured footprint versus the configured memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AccessStats:
    """Counters for logical storage operations.

    Attributes:
        random_accesses: point lookups into a storage structure. In a
            deployed system each is a potential page fetch; this is the
            unit the memory model charges SSD latency against.
        sequential_bytes: bytes read sequentially (scans, extracts).
        npa_hops: Succinct NPA dereferences (CPU cost of operating on
            the compressed representation; proportional to ``alpha``).
        searches: substring/index search operations issued.
        writes: record appends/mutations.
        decompressed_bytes: bytes run through block decompression (CPU
            cost of compressed baselines such as Titan-Compressed).
    """

    random_accesses: int = 0
    sequential_bytes: int = 0
    npa_hops: int = 0
    searches: int = 0
    writes: int = 0
    decompressed_bytes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.random_accesses = 0
        self.sequential_bytes = 0
        self.npa_hops = 0
        self.searches = 0
        self.writes = 0
        self.decompressed_bytes = 0

    def snapshot(self) -> "AccessStats":
        """A copy of the current counter values."""
        return AccessStats(
            random_accesses=self.random_accesses,
            sequential_bytes=self.sequential_bytes,
            npa_hops=self.npa_hops,
            searches=self.searches,
            writes=self.writes,
            decompressed_bytes=self.decompressed_bytes,
        )

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return AccessStats(
            random_accesses=self.random_accesses - earlier.random_accesses,
            sequential_bytes=self.sequential_bytes - earlier.sequential_bytes,
            npa_hops=self.npa_hops - earlier.npa_hops,
            searches=self.searches - earlier.searches,
            writes=self.writes - earlier.writes,
            decompressed_bytes=self.decompressed_bytes - earlier.decompressed_bytes,
        )

    def merge(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.random_accesses += other.random_accesses
        self.sequential_bytes += other.sequential_bytes
        self.npa_hops += other.npa_hops
        self.searches += other.searches
        self.writes += other.writes
        self.decompressed_bytes += other.decompressed_bytes

    @property
    def total_touches(self) -> int:
        """All operations that may touch storage."""
        return self.random_accesses + self.searches + self.writes

"""SuccinctKV: a key-value interface over the compressed flat file.

Succinct's semi-structured interface (§3.1): records are serialized
into one flat file separated by a record delimiter; a sorted key array
plus a parallel offset array provide ``get(key)`` via binary search +
``extract``, and ``search(value_substring)`` via flat-file search +
offset-to-record translation — the same translation ZipG's NodeFile
uses to turn match offsets into NodeIDs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.succinct.stats import AccessStats
from repro.succinct.succinct_file import SuccinctFile

RECORD_DELIMITER = 0x1E  # ASCII record separator


class SuccinctKV:
    """An immutable compressed key-value store.

    Args:
        records: mapping of integer key -> value bytes. Values must not
            contain the record delimiter (0x1E) or the sentinel (0x00).
        alpha: Succinct sampling rate.
        stats: optional shared access meter.
    """

    def __init__(
        self,
        records: Dict[int, bytes],
        alpha: int = 32,
        stats: Optional[AccessStats] = None,
    ) -> None:
        keys = sorted(records)
        offsets: List[int] = []
        buffer = bytearray()
        for key in keys:
            value = bytes(records[key])
            if RECORD_DELIMITER in value:
                raise ValueError("values must not contain the record delimiter 0x1E")
            offsets.append(len(buffer))
            buffer.extend(value)
            buffer.append(RECORD_DELIMITER)
        self._keys = np.asarray(keys, dtype=np.int64)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._file = SuccinctFile(bytes(buffer), alpha=alpha, stats=stats)  # zipg: owned-copy
        self.stats = self._file.stats

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: int) -> bool:
        index = int(np.searchsorted(self._keys, key))
        return index < len(self._keys) and self._keys[index] == key

    def keys(self) -> np.ndarray:
        """All keys, ascending."""
        return self._keys.copy()

    def _record_index(self, key: int) -> int:
        index = int(np.searchsorted(self._keys, key))
        if index >= len(self._keys) or self._keys[index] != key:
            raise KeyError(key)
        return index

    def get(self, key: int) -> bytes:
        """Value stored under ``key`` (raises ``KeyError`` if absent)."""
        index = self._record_index(key)
        start = int(self._offsets[index])
        if index + 1 < len(self._offsets):
            length = int(self._offsets[index + 1]) - start - 1
        else:
            length = len(self._file) - start - 1
        return self._file.extract(start, length)

    def record_offset(self, key: int) -> int:
        """Flat-file offset of the record for ``key``."""
        return int(self._offsets[self._record_index(key)])

    def offset_to_key(self, offset: int) -> int:
        """Key of the record containing flat-file ``offset``."""
        index = int(np.searchsorted(self._offsets, offset, side="right")) - 1
        if index < 0:
            raise IndexError(f"offset {offset} precedes the first record")
        return int(self._keys[index])

    def search(self, value_substring: bytes) -> List[int]:
        """Keys whose value contains ``value_substring`` (ascending)."""
        matches = self._file.search(bytes(value_substring))  # zipg: owned-copy
        keys = {self.offset_to_key(int(offset)) for offset in matches}
        return sorted(keys)

    def extract_from(self, key: int, relative_offset: int, length: int) -> bytes:
        """Random access *within* a record: ``length`` bytes starting at
        ``relative_offset`` inside the value of ``key``."""
        start = self.record_offset(key) + relative_offset
        return self._file.extract(start, length)

    def original_size_bytes(self) -> int:
        """Uncompressed payload size (values + record delimiters)."""
        return self._file.original_size_bytes()

    def serialized_size_bytes(self) -> int:
        """Compressed footprint including the key/offset directory."""
        directory = self._keys.nbytes + self._offsets.nbytes
        return self._file.serialized_size_bytes() + directory


def build_kv(pairs: Iterable, alpha: int = 32) -> SuccinctKV:
    """Convenience constructor from an iterable of (key, value) pairs."""
    return SuccinctKV(dict(pairs), alpha=alpha)

"""Next-pointer array (NPA), Succinct's third data structure.

``NPA[i] = ISA[SA[i] + 1 mod n]`` maps each row of the (conceptual)
sorted-suffix matrix to the row holding the next suffix of the text.
Within the rows that share a first character (a *bucket*) the NPA is
strictly increasing, which is what makes it highly compressible and
what enables backward search by binary-searching the NPA inside a
bucket.

The in-memory representation here is a plain numpy array for query
speed; :meth:`NextPointerArray.serialized_size_bytes` reports the size
of the two-level delta encoding Succinct would persist, and is what the
storage-footprint experiments account against.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.succinct.coding import delta_encoded_bit_size


class NextPointerArray:
    """The NPA plus the character-bucket directory of the first column.

    Args:
        npa: ``int64`` array, a permutation of ``0..n-1``.
        bucket_chars: sorted ``uint8`` array of distinct bytes occurring
            in the text.
        bucket_starts: row index where each character's bucket begins;
            same length as ``bucket_chars``. Bucket ``k`` spans rows
            ``[bucket_starts[k], bucket_starts[k+1])`` (the last bucket
            ends at ``n``).
    """

    def __init__(
        self,
        npa: np.ndarray,
        bucket_chars: np.ndarray,
        bucket_starts: np.ndarray,
    ) -> None:
        if len(bucket_chars) != len(bucket_starts):
            raise ValueError("bucket_chars and bucket_starts must align")
        self._npa = np.asarray(npa, dtype=np.int64)
        self._bucket_chars = np.asarray(bucket_chars, dtype=np.uint8)
        self._bucket_starts = np.asarray(bucket_starts, dtype=np.int64)
        self._bucket_ends = np.concatenate(
            (self._bucket_starts[1:], [len(self._npa)])
        )
        # Derived acceleration structures are built lazily on first
        # query, never at construction: an mmap-backed load must stay
        # O(1) and not fault the NPA pages (docs/STORAGE.md).
        self._npa_list_cache: list | None = None
        self._bucket_starts_list_cache: list | None = None
        self._bucket_chars_list_cache: list | None = None
        self._row_chars_cache: np.ndarray | None = None
        # Hop-doubling tables (npa^1, npa^2, npa^4, ...), built lazily by
        # the batched kernels: expanding anchors to `steps` consecutive
        # positions then costs O(log steps) gathers, not O(steps).
        self._hop_tables = [self._npa]

    @property
    def _npa_list(self) -> list:
        """Plain-python NPA mirror for the per-hop hot path: list
        indexing and bisect beat numpy scalar indexing in tight loops
        by ~5x."""
        if self._npa_list_cache is None:
            self._npa_list_cache = self._npa.tolist()
        return self._npa_list_cache

    @property
    def _bucket_starts_list(self) -> list:
        if self._bucket_starts_list_cache is None:
            self._bucket_starts_list_cache = self._bucket_starts.tolist()
        return self._bucket_starts_list_cache

    @property
    def _bucket_chars_list(self) -> list:
        if self._bucket_chars_list_cache is None:
            self._bucket_chars_list_cache = self._bucket_chars.tolist()
        return self._bucket_chars_list_cache

    @property
    def _row_chars(self) -> np.ndarray:
        """Dense row -> first-character map for the vectorized kernels
        (one gather instead of a searchsorted per lockstep round)."""
        if self._row_chars_cache is None:
            self._row_chars_cache = np.repeat(
                self._bucket_chars, self._bucket_ends - self._bucket_starts
            )
        return self._row_chars_cache

    @classmethod
    def from_text(cls, data: bytes, suffix_array: np.ndarray, isa: np.ndarray) -> "NextPointerArray":
        """Build the NPA for ``data`` given its SA and ISA."""
        n = len(data)
        npa = isa[(suffix_array + 1) % n] if n else np.empty(0, dtype=np.int64)
        counts = np.bincount(
            np.frombuffer(bytes(data), dtype=np.uint8), minlength=256
        )  # zipg: owned-copy
        present = np.nonzero(counts)[0]
        starts = np.concatenate(([0], np.cumsum(counts[present])))[:-1]
        return cls(npa, present.astype(np.uint8), starts)

    def __len__(self) -> int:
        return len(self._npa)

    @property
    def npa_array(self) -> np.ndarray:
        """The raw NPA values (an owned copy)."""
        return self._npa.copy()  # zipg: owned-copy

    @property
    def bucket_chars(self) -> np.ndarray:
        return self._bucket_chars.copy()  # zipg: owned-copy

    @property
    def bucket_starts(self) -> np.ndarray:
        return self._bucket_starts.copy()  # zipg: owned-copy

    def arrays_for_write(self) -> tuple:
        """``(npa, bucket_chars, bucket_starts)`` without copies.

        Write-side zero-copy serialization only; callers must treat
        the arrays as read-only.
        """
        return self._npa, self._bucket_chars, self._bucket_starts

    def __getitem__(self, row: int) -> int:
        return self._npa_list[row]

    def follow(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized NPA dereference for an array of rows."""
        return self._npa[rows]

    def char_of_row(self, row: int) -> int:
        """First character (byte value) of the suffix at ``row``."""
        bucket = bisect.bisect_right(self._bucket_starts_list, row) - 1
        return self._bucket_chars_list[bucket]

    # ------------------------------------------------------------------
    # Vectorized query kernels: advance many rows in lockstep via
    # repeated fancy indexing so per-hop cost is a numpy gather, not a
    # Python-level loop iteration (the "decode speed" bottleneck of
    # compressed formats that Log(Graph)/Zuckerli attack with batch
    # decoding).
    # ------------------------------------------------------------------

    def chars_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`char_of_row`: first byte of each suffix."""
        return self._row_chars[rows]

    def _hop_table(self, index: int) -> np.ndarray:
        """The ``npa^(2^index)`` pointer table, built on first use."""
        while len(self._hop_tables) <= index:
            last = self._hop_tables[-1]
            self._hop_tables.append(last[last])
        return self._hop_tables[index]

    def walk(self, rows: np.ndarray, steps: int) -> np.ndarray:
        """Advance every row ``steps`` NPA hops in lockstep.

        Binary-decomposes ``steps`` over the hop-doubling tables, so the
        cost is O(log steps) numpy gathers over the whole batch instead
        of ``steps * len(rows)`` scalar dereferences.
        """
        rows = np.asarray(rows, dtype=np.int64)
        index = 0
        while steps:
            if steps & 1:
                rows = self._hop_table(index)[rows]
            steps >>= 1
            index += 1
        return rows

    def walk_varying(self, rows: np.ndarray, steps: np.ndarray) -> np.ndarray:
        """Advance row ``k`` by ``steps[k]`` hops (per-row depths).

        One masked gather per bit of the maximum depth.
        """
        rows = np.array(rows, dtype=np.int64, copy=True)
        steps = np.asarray(steps, dtype=np.int64)
        remaining = int(steps.max()) if steps.size else 0
        index = 0
        while remaining:
            moving = (steps >> index) & 1 == 1
            if moving.any():
                rows[moving] = self._hop_table(index)[rows[moving]]
            remaining >>= 1
            index += 1
        return rows

    def expand_rows(self, rows: np.ndarray, steps: int) -> np.ndarray:
        """Rows reached from each start row after 0..steps-1 hops.

        Returns a ``(steps, len(rows))`` matrix with ``out[s, k] =
        npa^s(rows[k])``, filled by doubling: the block of rows already
        known is advanced wholesale with the matching power-of-two hop
        table, so only O(log steps) gathers are issued.
        """
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((steps, len(rows)), dtype=np.int64)
        if steps == 0:
            return out
        out[0] = rows
        filled = 1
        index = 0
        while filled < steps:
            take = min(filled, steps - filled)
            out[filled : filled + take] = self._hop_table(index)[out[:take]]
            filled += take
            index += 1
        return out

    def walk_collect(self, rows: np.ndarray, steps: int) -> np.ndarray:
        """Bytes at the ``steps`` consecutive text positions starting at
        each row's suffix.

        Returns a ``(len(rows), steps)`` ``uint8`` matrix; row ``k``
        holds the text bytes decoded from row ``k`` onward. Built from
        :meth:`expand_rows` plus one dense character gather.
        """
        matrix = self.expand_rows(rows, steps)
        chars = self._row_chars[matrix.ravel()].reshape(matrix.shape)
        return np.ascontiguousarray(chars.T)

    def bucket_range(self, char: int) -> tuple:
        """Row range ``[start, end)`` of suffixes starting with ``char``.

        Returns ``(0, 0)`` if the character does not occur in the text.
        """
        index = int(np.searchsorted(self._bucket_chars, char))
        if index >= len(self._bucket_chars) or self._bucket_chars[index] != char:
            return (0, 0)
        return (int(self._bucket_starts[index]), int(self._bucket_ends[index]))

    def refine_backward(self, char: int, low: int, high: int) -> tuple:
        """One step of backward search.

        Given the row range ``[low, high)`` of suffixes starting with a
        pattern ``P``, return the row range of suffixes starting with
        ``char + P``. Relies on the NPA being strictly increasing within
        each character bucket.
        """
        start, end = self.bucket_range(char)
        if start == end:
            return (0, 0)
        segment = self._npa[start:end]
        new_low = start + int(np.searchsorted(segment, low, side="left"))
        new_high = start + int(np.searchsorted(segment, high, side="left"))
        return (new_low, new_high)

    def serialized_size_bytes(self, anchor_every: int = 128) -> int:
        """Size of the two-level delta-encoded NPA plus bucket directory."""
        bits = 0
        for start, end in zip(self._bucket_starts, self._bucket_ends):
            bits += delta_encoded_bit_size(self._npa[start:end], anchor_every)
        directory = len(self._bucket_chars) * (1 + 8)  # char byte + start offset
        return (bits + 7) // 8 + directory

"""Next-pointer array (NPA), Succinct's third data structure.

``NPA[i] = ISA[SA[i] + 1 mod n]`` maps each row of the (conceptual)
sorted-suffix matrix to the row holding the next suffix of the text.
Within the rows that share a first character (a *bucket*) the NPA is
strictly increasing, which is what makes it highly compressible and
what enables backward search by binary-searching the NPA inside a
bucket.

The in-memory representation here is a plain numpy array for query
speed; :meth:`NextPointerArray.serialized_size_bytes` reports the size
of the two-level delta encoding Succinct would persist, and is what the
storage-footprint experiments account against.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.succinct.coding import delta_encoded_bit_size


class NextPointerArray:
    """The NPA plus the character-bucket directory of the first column.

    Args:
        npa: ``int64`` array, a permutation of ``0..n-1``.
        bucket_chars: sorted ``uint8`` array of distinct bytes occurring
            in the text.
        bucket_starts: row index where each character's bucket begins;
            same length as ``bucket_chars``. Bucket ``k`` spans rows
            ``[bucket_starts[k], bucket_starts[k+1])`` (the last bucket
            ends at ``n``).
    """

    def __init__(
        self,
        npa: np.ndarray,
        bucket_chars: np.ndarray,
        bucket_starts: np.ndarray,
    ):
        if len(bucket_chars) != len(bucket_starts):
            raise ValueError("bucket_chars and bucket_starts must align")
        self._npa = np.asarray(npa, dtype=np.int64)
        self._bucket_chars = np.asarray(bucket_chars, dtype=np.uint8)
        self._bucket_starts = np.asarray(bucket_starts, dtype=np.int64)
        self._bucket_ends = np.concatenate(
            (self._bucket_starts[1:], [len(self._npa)])
        )
        # Plain-python mirrors for the per-hop hot path: list indexing
        # and bisect beat numpy scalar indexing in tight loops by ~5x.
        self._npa_list = self._npa.tolist()
        self._bucket_starts_list = self._bucket_starts.tolist()
        self._bucket_chars_list = self._bucket_chars.tolist()

    @classmethod
    def from_text(cls, data: bytes, suffix_array: np.ndarray, isa: np.ndarray) -> "NextPointerArray":
        """Build the NPA for ``data`` given its SA and ISA."""
        n = len(data)
        npa = isa[(suffix_array + 1) % n] if n else np.empty(0, dtype=np.int64)
        counts = np.bincount(
            np.frombuffer(bytes(data), dtype=np.uint8), minlength=256
        )
        present = np.nonzero(counts)[0]
        starts = np.concatenate(([0], np.cumsum(counts[present])))[:-1]
        return cls(npa, present.astype(np.uint8), starts)

    def __len__(self) -> int:
        return len(self._npa)

    @property
    def npa_array(self) -> np.ndarray:
        """The raw NPA values (for serialization)."""
        return self._npa.copy()

    @property
    def bucket_chars(self) -> np.ndarray:
        return self._bucket_chars.copy()

    @property
    def bucket_starts(self) -> np.ndarray:
        return self._bucket_starts.copy()

    def __getitem__(self, row: int) -> int:
        return self._npa_list[row]

    def follow(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized NPA dereference for an array of rows."""
        return self._npa[rows]

    def char_of_row(self, row: int) -> int:
        """First character (byte value) of the suffix at ``row``."""
        bucket = bisect.bisect_right(self._bucket_starts_list, row) - 1
        return self._bucket_chars_list[bucket]

    def bucket_range(self, char: int) -> tuple:
        """Row range ``[start, end)`` of suffixes starting with ``char``.

        Returns ``(0, 0)`` if the character does not occur in the text.
        """
        index = int(np.searchsorted(self._bucket_chars, char))
        if index >= len(self._bucket_chars) or self._bucket_chars[index] != char:
            return (0, 0)
        return (int(self._bucket_starts[index]), int(self._bucket_ends[index]))

    def refine_backward(self, char: int, low: int, high: int) -> tuple:
        """One step of backward search.

        Given the row range ``[low, high)`` of suffixes starting with a
        pattern ``P``, return the row range of suffixes starting with
        ``char + P``. Relies on the NPA being strictly increasing within
        each character bucket.
        """
        start, end = self.bucket_range(char)
        if start == end:
            return (0, 0)
        segment = self._npa[start:end]
        new_low = start + int(np.searchsorted(segment, low, side="left"))
        new_high = start + int(np.searchsorted(segment, high, side="left"))
        return (new_low, new_high)

    def serialized_size_bytes(self, anchor_every: int = 128) -> int:
        """Size of the two-level delta-encoded NPA plus bucket directory."""
        bits = 0
        for start, end in zip(self._bucket_starts, self._bucket_ends):
            bits += delta_encoded_bit_size(self._npa[start:end], anchor_every)
        directory = len(self._bucket_chars) * (1 + 8)  # char byte + start offset
        return (bits + 7) // 8 + directory

"""GF(2^8) arithmetic as numpy table lookups.

The Reed-Solomon codec multiplies every byte of every snapshot file by
small field constants, so the field operations must be vectorized:
scalar Python GF multiplies would put a ~100ns interpreter dispatch on
every byte.  This module precomputes the standard exp/log tables for
the AES-adjacent primitive polynomial ``x^8+x^4+x^3+x^2+1`` (0x11d,
the polynomial every RS storage system uses) plus a full 256x256
product table, so multiplying a constant into a fragment is one fancy
index: ``MUL_TABLE[c][buf]``.

Addition in GF(2^8) is XOR; ``numpy.bitwise_xor`` already covers it.
"""
# zipg: robust-path

from __future__ import annotations

import numpy as np

#: The field's primitive polynomial (degree-8 terms reduced away).
PRIMITIVE_POLY = 0x11D
#: Field order.
ORDER = 256


def _build_tables() -> tuple:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    # Doubled exp table lets mul skip the mod-255 on the exponent sum.
    exp[255:510] = exp[:255]
    mul = np.zeros((256, 256), dtype=np.uint8)
    for a in range(1, 256):
        # Row a = a * [0..255]: one vectorized exp/log lookup per row.
        mul[a, 1:] = exp[log[a] + log[1:]]
    return exp, log, mul


EXP_TABLE, LOG_TABLE, MUL_TABLE = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Scalar product in GF(256)."""
    return int(MUL_TABLE[a, b])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; ``a`` must be non-zero."""
    if a == 0:
        raise ValueError("0 has no inverse in GF(256)")
    return int(EXP_TABLE[255 - int(LOG_TABLE[a])])


def gf_mul_bytes(coefficient: int, data: np.ndarray) -> np.ndarray:
    """``coefficient * data`` elementwise over GF(256).

    ``data`` must be a ``uint8`` array; the result is a fresh array
    (one table row fancy-indexed by the payload)."""
    if coefficient == 0:
        return np.zeros_like(data)
    if coefficient == 1:
        return data.copy()
    return MUL_TABLE[coefficient][data]


def gf_addmul_bytes(accumulator: np.ndarray, coefficient: int,
                    data: np.ndarray) -> None:
    """``accumulator ^= coefficient * data`` in place (the codec's
    inner loop: one lookup + one XOR per fragment byte)."""
    if coefficient == 0:
        return
    if coefficient == 1:
        np.bitwise_xor(accumulator, data, out=accumulator)
    else:
        np.bitwise_xor(accumulator, MUL_TABLE[coefficient][data],
                       out=accumulator)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256) (small matrices: generator /
    decode matrices, never payload-sized)."""
    rows, inner = a.shape
    inner2, cols = b.shape
    if inner != inner2:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for i in range(inner):
            gf_addmul_bytes(out[r], int(a[r, i]), b[i])
    return out


def gf_inv_matrix(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination.

    Raises :class:`ValueError` on a singular matrix -- for the RS
    decode matrix that means the surviving fragment set is not
    decodable, which the Vandermonde construction rules out for any
    ``k`` distinct fragments (so hitting this is a caller bug)."""
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"matrix is not square: {matrix.shape}")
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(size, dtype=np.uint8)
    for col in range(size):
        pivot = -1
        for row in range(col, size):
            if work[row, col]:
                pivot = row
                break
        if pivot < 0:
            raise ValueError("singular matrix over GF(256)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        scale = gf_inv(int(work[col, col]))
        work[col] = gf_mul_bytes(scale, work[col])
        inverse[col] = gf_mul_bytes(scale, inverse[col])
        for row in range(size):
            if row == col or not work[row, col]:
                continue
            factor = int(work[row, col])
            gf_addmul_bytes(work[row], factor, work[col])
            gf_addmul_bytes(inverse[row], factor, inverse[col])
    return inverse


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """The ``rows x cols`` Vandermonde matrix over GF(256)
    (row ``r`` is ``[r^0, r^1, ...]`` with distinct evaluation points
    ``0..rows-1``); any ``cols`` rows are linearly independent while
    ``rows <= 256``."""
    if rows > ORDER:
        raise ValueError(f"at most {ORDER} fragments (got {rows})")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        acc = 1
        for c in range(cols):
            out[r, c] = acc
            acc = gf_mul(acc, r)
    return out

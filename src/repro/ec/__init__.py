"""``repro.ec``: erasure-coded shard fault tolerance (§4.1).

ZipG's fault-tolerance story replicates every shard
``replication_factor`` times -- a 2-3x storage multiplier on a system
whose whole point is memory efficiency.  This package keeps the
availability at **sub-2x overhead** by Reed-Solomon-encoding the
immutable, generation-numbered snapshot files that
:func:`repro.core.persistence.save_store` produces (they never mutate
in place, so fragments never go stale within a generation), while the
hot WAL tail stays fully replicated through the cluster oplog.

Three layers:

* :mod:`repro.ec.gf256` -- GF(2^8) arithmetic as vectorized numpy
  table lookups (the codec's inner loop touches every snapshot byte).
* :mod:`repro.ec.rs` -- a systematic Reed-Solomon codec:
  ``k`` data fragments pass through verbatim, ``m`` parity fragments
  are GF(256) linear combinations, and the original data decodes from
  *any* ``k`` surviving fragments.
* :mod:`repro.ec.striping` -- splits each snapshot file into ``k+m``
  CRC'd fragments, spreads them round-robin across servers, and
  records the layout in a manifest extending the
  :mod:`repro.core.persistence` commit idiom (write temp + atomic
  rename).

:class:`repro.cluster.replication.ReplicatedZipGCluster` consumes this
package through its ``placement="ec"`` mode: reads of a shard whose
server is down reconstruct a *complete* answer from any ``k``
surviving fragments, and ``recover_server`` re-encodes the returning
server's missing fragments in a rate-limited background rebuild before
re-admission.
"""

from repro.ec.rs import RSCodec
from repro.ec.striping import (
    EC_MANIFEST_NAME,
    ECManifest,
    ErasureCodedSnapshots,
    FragmentStore,
    encode_store,
    fragment_server,
    max_tolerable_server_failures,
)

__all__ = [
    "EC_MANIFEST_NAME",
    "ECManifest",
    "ErasureCodedSnapshots",
    "FragmentStore",
    "RSCodec",
    "encode_store",
    "fragment_server",
    "max_tolerable_server_failures",
]

"""Striping: snapshot files -> placed, CRC'd fragments (+ manifest).

The erasure-coding target is the output of
:func:`repro.core.persistence.save_store`: immutable,
generation-numbered data files whose integrity metadata (per-file CRC
and size) the snapshot manifest already records.  This module splits
each of those files into ``k`` data + ``m`` parity fragments
(:class:`~repro.ec.rs.RSCodec`), spreads the ``k+m`` fragments
round-robin across servers, and commits the layout in an
``ec-manifest.json`` that extends the :mod:`~repro.core.persistence`
manifest idiom: per-fragment CRC32/size/placement, whole-file CRC
carried over from the snapshot manifest, write-to-temp + atomic-rename
commit.

Placement and the failure model: fragment ``i`` of the ``f``-th file
lands on server ``(f + i) % num_servers``, so one file's fragments
spread as evenly as possible and the per-file load rotates.  A file
has at most ``ceil((k+m)/num_servers)`` fragments on any one server,
so losing one server erases at most that many fragments of any file;
the deployment tolerates ``m // ceil((k+m)/num_servers)`` simultaneous
server losses (:func:`max_tolerable_server_failures`).  With the
issue's ``k=4, m=2`` that is any single server for ``num_servers >=
3`` and any two for ``num_servers >= 6``.

Every fragment write routes through :func:`repro.chaos.write_bytes`
(sites ``ec.encode`` / ``ec.rebuild``) and every reconstruction kicks
``ec.decode``, so the chaos suites can tear, fail, and crash each
phase deterministically.
"""
# zipg: robust-path

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro import chaos, obs
from repro.core.errors import (
    FragmentCorruptError,
    ManifestCorruptError,
    ManifestMissingError,
    ReconstructionFailed,
    UnsupportedVersionError,
)
from repro.ec.rs import RSCodec

EC_MANIFEST_VERSION = 1
EC_MANIFEST_NAME = "ec-manifest.json"

#: Optional[bytes]-returning fragment fetcher: ``fetch(server, name,
#: index)`` returns the fragment payload or raises (dead server,
#: corrupt fragment) -- reconstruction skips and moves on.
FragmentFetch = Callable[[int, str, int], bytes]


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def fragment_server(file_index: int, fragment_index: int,
                    num_servers: int) -> int:
    """The server holding fragment ``fragment_index`` of the
    ``file_index``-th snapshot file (rotated round-robin)."""
    return (file_index + fragment_index) % num_servers


def max_tolerable_server_failures(k: int, m: int, num_servers: int) -> int:
    """Simultaneous server losses the placement survives for every
    file: a server holds at most ``ceil((k+m)/num_servers)`` fragments
    of one file, and decode needs any ``k`` of ``k+m``."""
    per_server = -(-(k + m) // num_servers)
    return m // per_server


@dataclass
class FragmentInfo:
    """One placed fragment: where it lives and how to verify it."""

    server: int
    crc32: int
    bytes: int

    def to_payload(self) -> Dict[str, int]:
        return {"server": self.server, "crc32": self.crc32,
                "bytes": self.bytes}

    @classmethod
    def from_payload(cls, payload: Dict[str, int]) -> "FragmentInfo":
        return cls(int(payload["server"]), int(payload["crc32"]),
                   int(payload["bytes"]))


@dataclass
class FileStripe:
    """One snapshot file's erasure-coded layout."""

    bytes: int            # original (pre-padding) file size
    crc32: int            # whole-file CRC from the snapshot manifest
    fragments: List[FragmentInfo] = field(default_factory=list)

    def to_payload(self) -> Dict[str, object]:
        return {
            "bytes": self.bytes,
            "crc32": self.crc32,
            "fragments": [fragment.to_payload() for fragment in self.fragments],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FileStripe":
        return cls(
            int(payload["bytes"]), int(payload["crc32"]),
            [FragmentInfo.from_payload(entry)
             for entry in payload["fragments"]],
        )


@dataclass
class ECManifest:
    """The committed fragment layout of one snapshot generation."""

    k: int
    m: int
    generation: int
    num_servers: int
    files: Dict[str, FileStripe] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": EC_MANIFEST_VERSION,
            "k": self.k,
            "m": self.m,
            "generation": self.generation,
            "num_servers": self.num_servers,
            "files": {name: stripe.to_payload()
                      for name, stripe in self.files.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ECManifest":
        version = payload.get("version")
        if version != EC_MANIFEST_VERSION:
            raise UnsupportedVersionError(
                f"unsupported ec-manifest version {version!r} "
                f"(this build reads version {EC_MANIFEST_VERSION})"
            )
        try:
            return cls(
                int(payload["k"]), int(payload["m"]),
                int(payload["generation"]), int(payload["num_servers"]),
                {str(name): FileStripe.from_payload(stripe)
                 for name, stripe in payload["files"].items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorruptError(
                f"malformed ec-manifest: {exc!r}") from exc

    @classmethod
    def load(cls, path: str) -> "ECManifest":
        if not os.path.exists(path):
            raise ManifestMissingError(f"no ec manifest at {path}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (ValueError, OSError) as exc:
            raise ManifestCorruptError(f"cannot parse {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ManifestCorruptError(f"{path}: ec manifest is not an object")
        return cls.from_payload(payload)

    def save(self, path: str, fsync: bool = True) -> None:
        """Commit via the persistence idiom: temp + atomic rename."""
        data = json.dumps(self.to_payload()).encode("utf-8")
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            chaos.write_bytes(chaos.SITE_EC_ENCODE, handle, data,
                              file=EC_MANIFEST_NAME)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    def server_fragments(self, server: int) -> Iterator[Tuple[str, int]]:
        """Every ``(file name, fragment index)`` placed on ``server``."""
        for name in sorted(self.files):
            for index, info in enumerate(self.files[name].fragments):
                if info.server == server:
                    yield name, index

    def storage_bytes(self) -> int:
        """Total fragment bytes the layout stores (the overhead-ratio
        numerator; the denominator is the sum of original sizes)."""
        return sum(
            info.bytes
            for stripe in self.files.values()
            for info in stripe.fragments
        )

    def data_bytes(self) -> int:
        return sum(stripe.bytes for stripe in self.files.values())


class FragmentStore:
    """One server's fragment directory: CRC-checked reads, atomic
    chaos-injectable writes.

    Fragment files are ``<snapshot file name>.f<index>``; integrity
    lives in the EC manifest (a fragment store alone cannot vouch for
    its contents -- pass the expected CRC/size to :meth:`read`)."""

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, name: str, index: int) -> str:
        return os.path.join(self.root, f"{name}.f{index}")

    def write(self, name: str, index: int, data: bytes,
              site: str = chaos.SITE_EC_ENCODE, fsync: bool = True) -> None:
        """Persist one fragment (temp + rename so a torn write never
        shadows a good fragment); ``site`` is the chaos site the write
        routes through (``ec.encode`` on first placement, ``ec.rebuild``
        when re-created onto a recovered server)."""
        os.makedirs(self.root, exist_ok=True)
        final = self.path(name, index)
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            chaos.write_bytes(site, handle, data, file=name, fragment=index)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, final)

    def read(self, name: str, index: int, expected_crc: Optional[int] = None,
             expected_bytes: Optional[int] = None) -> bytes:
        """One fragment's payload, verified against the manifest's CRC
        and size when given; missing or mismatching fragments raise
        :class:`FragmentCorruptError` (reconstruction treats both as
        an erasure)."""
        path = self.path(name, index)
        if not os.path.exists(path):
            raise FragmentCorruptError(f"fragment missing: {path}")
        with open(path, "rb") as handle:
            data = handle.read()
        if expected_bytes is not None and len(data) != expected_bytes:
            raise FragmentCorruptError(
                f"fragment torn: {path} has {len(data)} bytes, "
                f"manifest says {expected_bytes}"
            )
        if expected_crc is not None and _crc32(data) != expected_crc:
            raise FragmentCorruptError(
                f"fragment corrupt: {path} crc {_crc32(data):08x}, "
                f"manifest says {expected_crc:08x}"
            )
        return data

    def has(self, name: str, index: int, expected_crc: int,
            expected_bytes: int) -> bool:
        """Whether a verified copy of the fragment is present."""
        try:
            self.read(name, index, expected_crc, expected_bytes)
        except FragmentCorruptError:
            return False
        return True

    def wipe(self) -> int:
        """Remove every fragment file (models a server coming back
        with a blank disk); returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for entry in os.listdir(self.root):
            os.remove(os.path.join(self.root, entry))
            removed += 1
        return removed


def server_store_root(ec_root: str, server: int) -> str:
    """The per-server fragment directory under one EC root."""
    return os.path.join(ec_root, f"server-{server}")


def encode_store(root: str, ec_root: str, num_servers: int,
                 k: int = 4, m: int = 2,
                 fsync: bool = True) -> ECManifest:
    """Erasure-code the committed snapshot under ``root`` into
    per-server fragment directories under ``ec_root``.

    Reads the snapshot through the persistence layer's verified-read
    path (a torn input must fail loudly, not encode garbage), writes
    every fragment through the ``ec.encode`` chaos site, and commits
    the EC manifest last -- a crash mid-encode leaves no committed
    layout, mirroring ``save_store``'s manifest-rename commit point.
    """
    # Imported here, not at module top: persistence is higher-level
    # (it imports the store types); the ec package stays importable
    # from the core layer.
    from repro.core.persistence import _read_manifest, _verified_read

    manifest = _read_manifest(root)
    if manifest is None:
        raise ManifestMissingError(f"no committed snapshot under {root}")
    files = manifest.get("files")
    generation = manifest.get("generation")
    if not isinstance(files, dict) or not isinstance(generation, int):
        raise ManifestCorruptError(f"{root}: snapshot manifest has no "
                                   f"generation/files")
    codec = RSCodec(k, m)
    stores = {
        server: FragmentStore(server_store_root(ec_root, server))
        for server in range(num_servers)
    }
    ec_manifest = ECManifest(k=k, m=m, generation=generation,
                             num_servers=num_servers)
    encoded_bytes = 0
    with obs.span("ec.encode", layer="ec"):
        for file_index, name in enumerate(sorted(files)):
            data = _verified_read(root, name, files[name])
            chaos.kick(chaos.SITE_EC_ENCODE, file=name)
            fragments = codec.encode(data)
            stripe = FileStripe(bytes=len(data), crc32=_crc32(data))
            for index, fragment in enumerate(fragments):
                server = fragment_server(file_index, index, num_servers)
                stores[server].write(name, index, fragment,
                                     site=chaos.SITE_EC_ENCODE, fsync=fsync)
                stripe.fragments.append(
                    FragmentInfo(server=server, crc32=_crc32(fragment),
                                 bytes=len(fragment))
                )
                encoded_bytes += len(fragment)
            ec_manifest.files[name] = stripe
    os.makedirs(ec_root, exist_ok=True)
    ec_manifest.save(os.path.join(ec_root, EC_MANIFEST_NAME), fsync=fsync)
    obs.counter(
        "zipg_ec_encoded_fragment_bytes_total",
        help="fragment bytes written by erasure encoding",
    ).inc(encoded_bytes)
    return ec_manifest


class ErasureCodedSnapshots:
    """The cluster-facing handle over one encoded snapshot generation.

    Owns the manifest, the codec, and (locally) the per-server
    fragment stores; reconstruction and rebuild take a ``fetch``
    callback so the same logic runs against local directories (tests,
    in-process clusters) or ``ec_fetch_fragment`` RPCs (the socket
    deployment, where a SIGKILLed server's fragments are genuinely
    unreachable)."""

    def __init__(self, ec_root: str,
                 manifest: Optional[ECManifest] = None) -> None:
        self.ec_root = ec_root
        self.manifest = manifest if manifest is not None else ECManifest.load(
            os.path.join(ec_root, EC_MANIFEST_NAME)
        )
        self.codec = RSCodec(self.manifest.k, self.manifest.m)

    @classmethod
    def encode_snapshot(cls, root: str, ec_root: str, num_servers: int,
               k: int = 4, m: int = 2,
               fsync: bool = True) -> "ErasureCodedSnapshots":
        return cls(ec_root, encode_store(root, ec_root, num_servers,
                                         k=k, m=m, fsync=fsync))

    def store_for(self, server: int) -> FragmentStore:
        return FragmentStore(server_store_root(self.ec_root, server))

    def fragment_stores(self) -> Dict[int, FragmentStore]:
        return {server: self.store_for(server)
                for server in range(self.manifest.num_servers)}

    def shard_file(self, shard_id: int) -> str:
        """The snapshot file name holding ``shard_id``'s compressed
        structures in this generation."""
        name = f"shard-{shard_id}.g{self.manifest.generation}.bin"
        if name not in self.manifest.files:
            raise ReconstructionFailed(
                f"no encoded snapshot file for shard {shard_id} "
                f"(generation {self.manifest.generation})"
            )
        return name

    def local_fetch(self, server: int, name: str, index: int) -> bytes:
        """Fetch straight from the local per-server directories (the
        in-process deployment's transport)."""
        info = self.manifest.files[name].fragments[index]
        return self.store_for(server).read(name, index, info.crc32, info.bytes)

    # ------------------------------------------------------------------
    # Degraded reads and rebuild
    # ------------------------------------------------------------------

    def reconstruct_file(self, name: str, fetch: FragmentFetch,
                         skip_servers: Tuple[int, ...] = ()) -> bytes:
        """Reconstruct one snapshot file from any ``k`` live fragments.

        ``fetch`` failures (dead server, corrupt fragment -- anything
        raising ``Exception``) count as erasures; gathering stops as
        soon as ``k`` verified fragments are in hand.  The decoded
        payload is verified against the whole-file CRC the snapshot
        manifest recorded, so a wrong reconstruction can never be
        served.  Raises :class:`ReconstructionFailed` once the live
        fragment supply cannot reach ``k``."""
        stripe = self.manifest.files.get(name)
        if stripe is None:
            raise ReconstructionFailed(f"no encoded file {name!r}")
        start = time.perf_counter()
        with obs.span("ec.decode", layer="ec", file=name):
            chaos.kick(chaos.SITE_EC_DECODE, file=name)
            gathered: Dict[int, bytes] = {}
            failures: List[str] = []
            for index, info in enumerate(stripe.fragments):
                if len(gathered) >= self.codec.k:
                    break
                if info.server in skip_servers:
                    failures.append(f"f{index}@s{info.server}: skipped (down)")
                    continue
                try:
                    data = fetch(info.server, name, index)
                except Exception as exc:
                    failures.append(
                        f"f{index}@s{info.server}: {type(exc).__name__}")
                    continue
                if len(data) != info.bytes or _crc32(data) != info.crc32:
                    failures.append(f"f{index}@s{info.server}: corrupt")
                    continue
                gathered[index] = data
            if len(gathered) < self.codec.k:
                raise ReconstructionFailed(
                    f"cannot reconstruct {name!r}: {len(gathered)} live "
                    f"fragments of {self.codec.k} needed "
                    f"({'; '.join(failures)})"
                )
            data = self.codec.decode(gathered, stripe.bytes)
            if _crc32(data) != stripe.crc32:
                raise ReconstructionFailed(
                    f"reconstructed {name!r} fails the whole-file CRC "
                    f"(crc {_crc32(data):08x}, manifest {stripe.crc32:08x})"
                )
        obs.counter(
            "zipg_ec_reconstructions_total",
            help="snapshot files reconstructed from fragments for "
                 "degraded reads",
            labels={"file": name},
        ).inc()
        obs.histogram(
            "zipg_ec_decode_seconds",
            help="wall time of erasure-decode reconstructions",
        ).observe(time.perf_counter() - start)
        return data

    def materialize_file(self, name: str, fetch: FragmentFetch,
                         out_path: str,
                         skip_servers: Tuple[int, ...] = ()) -> int:
        """Reconstruct ``name`` and land it at ``out_path`` as a real,
        CRC-verified file -- the shape ``load_store(mode="mmap")``
        needs, since a memory map requires an on-disk byte range, not
        an in-memory blob.

        The write is atomic (temp file in the destination directory,
        fsync, rename, directory fsync), so a crash mid-materialize
        leaves either no file or the complete verified file -- never a
        torn one that a later mmap would trust by size alone.  Returns
        the number of bytes written."""
        data = self.reconstruct_file(name, fetch, skip_servers=skip_servers)
        out_dir = os.path.dirname(os.path.abspath(out_path))
        os.makedirs(out_dir, exist_ok=True)
        tmp_path = out_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            chaos.write_bytes(chaos.SITE_EC_REBUILD, handle, data,
                              file=name, materialize=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, out_path)
        try:
            dir_fd = os.open(out_dir, os.O_RDONLY)
        except OSError:
            return len(data)  # no directory fds; rename already issued
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        return len(data)

    def rebuild_fragment(self, name: str, index: int,
                         fetch: FragmentFetch,
                         skip_servers: Tuple[int, ...] = ()) -> bytes:
        """Re-create one missing fragment from the survivors (decode
        the file, re-apply the fragment's generator row)."""
        data = self.reconstruct_file(name, fetch, skip_servers=skip_servers)
        return self.codec.parity_of(index, data)

"""Systematic Reed-Solomon erasure codec over GF(256).

``RSCodec(k, m)`` turns a byte payload into ``k`` data fragments plus
``m`` parity fragments such that the payload decodes from **any** ``k``
surviving fragments -- the §4.1 availability property at ``(k+m)/k``
storage overhead instead of ``replication_factor``x.

Construction: the generator is the ``(k+m) x k`` matrix
``G = V @ inv(V[:k])`` where ``V`` is a Vandermonde matrix with
distinct evaluation points.  The top ``k`` rows of ``G`` are the
identity (fragments 0..k-1 hold the payload verbatim -- *systematic*,
so the healthy read path never touches the codec), and any ``k`` rows
remain invertible, which is exactly the any-``k``-survivors decode
guarantee.  Encode and decode are vectorized: each output fragment is
a GF(256) linear combination of ``k`` input fragments computed with
one table-lookup + XOR pass per coefficient (:mod:`repro.ec.gf256`),
so cost is O(k*m) numpy passes over the data, never per-byte Python.

The codec is pure math -- no I/O, no chaos sites; fragment CRCs,
placement, and fault injection live in :mod:`repro.ec.striping`.
"""
# zipg: robust-path

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ec.gf256 import ORDER, gf_addmul_bytes, gf_inv_matrix, gf_matmul, vandermonde


class RSCodec:
    """A systematic ``k``-data / ``m``-parity Reed-Solomon code.

    Args:
        k: data fragments per stripe (the payload splits into ``k``).
        m: parity fragments (tolerated erasures).
    """

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 0:
            raise ValueError(f"need k >= 1 and m >= 0 (got k={k}, m={m})")
        if k + m > ORDER:
            raise ValueError(f"k+m must be <= {ORDER} (got {k + m})")
        self.k = k
        self.m = m
        v = vandermonde(k + m, k)
        self.generator = gf_matmul(v, gf_inv_matrix(v[:k]))

    @property
    def num_fragments(self) -> int:
        return self.k + self.m

    def fragment_length(self, size: int) -> int:
        """Per-fragment byte length for a ``size``-byte payload
        (payloads pad up to a multiple of ``k``; the original size is
        the manifest's job to remember)."""
        return (size + self.k - 1) // self.k if size else 0

    def _data_matrix(self, data: bytes) -> np.ndarray:
        length = self.fragment_length(len(data))
        matrix = np.zeros((self.k, length), dtype=np.uint8)
        flat = np.frombuffer(data, dtype=np.uint8)
        matrix.reshape(-1)[: len(flat)] = flat
        return matrix

    def encode(self, data: bytes) -> List[bytes]:
        """All ``k+m`` fragments of ``data`` (systematic: the first
        ``k`` concatenate -- minus padding -- back to the payload)."""
        data = bytes(memoryview(data))
        matrix = self._data_matrix(data)
        fragments = [matrix[row].tobytes() for row in range(self.k)]
        for row in range(self.k, self.k + self.m):
            fragments.append(self._combine(self.generator[row], matrix))
        return fragments

    def parity_of(self, index: int, data: bytes) -> bytes:
        """One fragment of ``data`` by index (0-based over ``k+m``)
        without materializing the rest -- the targeted-rebuild path."""
        if not 0 <= index < self.num_fragments:
            raise IndexError(f"fragment index {index} out of range")
        matrix = self._data_matrix(bytes(memoryview(data)))
        if index < self.k:
            return matrix[index].tobytes()
        return self._combine(self.generator[index], matrix)

    def _combine(self, coefficients: Sequence[int],
                 matrix: np.ndarray) -> bytes:
        out = np.zeros(matrix.shape[1], dtype=np.uint8)
        for column, coefficient in enumerate(coefficients):
            gf_addmul_bytes(out, int(coefficient), matrix[column])
        return out.tobytes()

    def decode(self, fragments: Dict[int, bytes], size: int) -> bytes:
        """Reconstruct the ``size``-byte payload from any ``k`` of its
        fragments (``index -> bytes``).

        Raises :class:`ValueError` with the shortfall when fewer than
        ``k`` fragments (or ragged lengths) are supplied."""
        length = self.fragment_length(size)
        usable = {
            index: fragment for index, fragment in fragments.items()
            if 0 <= index < self.num_fragments and len(fragment) == length
        }
        if len(usable) < self.k:
            raise ValueError(
                f"need {self.k} fragments to decode, have {len(usable)} "
                f"usable of {len(fragments)} supplied"
            )
        chosen = sorted(usable)[: self.k]
        # Survivors that are data fragments pass through; only the
        # erased data rows cost a matrix solve.
        rows = np.stack([
            np.frombuffer(usable[index], dtype=np.uint8) for index in chosen
        ])
        if chosen == list(range(self.k)):
            data = rows
        else:
            decode_matrix = gf_inv_matrix(self.generator[chosen])
            data = np.zeros((self.k, length), dtype=np.uint8)
            for row in range(self.k):
                for column in range(self.k):
                    gf_addmul_bytes(data[row],
                                    int(decode_matrix[row, column]),
                                    rows[column])
        return data.reshape(-1)[:size].tobytes()

    def rebuild_fragment(self, index: int, fragments: Dict[int, bytes],
                         size: int) -> bytes:
        """Re-encode the single missing fragment ``index`` from any
        ``k`` survivors (decode, then re-apply one generator row)."""
        data = self.decode(fragments, size)
        return self.parity_of(index, data)

"""Shared workload machinery: operations and sampling context."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.model import GraphData
from repro.workloads.properties import TIMESTAMP_BASE, TIMESTAMP_SPAN_SECONDS


@dataclass
class Operation:
    """One workload operation: a named closure over a graph store.

    ``run`` takes any object implementing
    :class:`~repro.baselines.interface.GraphStoreInterface` so the same
    operation stream can be replayed against every evaluated system.
    ``target`` is the primary NodeID the operation routes by (None for
    all-shard searches) -- clusters use it for server attribution.
    """

    name: str
    run: Callable
    target: "int | None" = None


@dataclass
class WorkloadContext:
    """Sampling state shared by the query-mix workloads."""

    node_ids: List[int]
    edge_samples: List[Tuple[int, int, int]]  # (source, edge_type, destination)
    num_edge_types: int
    rng: np.random.Generator
    node_skew: float = 0.0  # 0 = uniform; >1 = zipf-skewed hot nodes
    next_node_id: int = 0
    next_timestamp: int = TIMESTAMP_BASE + TIMESTAMP_SPAN_SECONDS
    added_nodes: List[int] = field(default_factory=list)

    @classmethod
    def from_graph(
        cls,
        graph: GraphData,
        rng: np.random.Generator,
        node_skew: float = 0.0,
        max_edge_samples: int = 2000,
    ) -> "WorkloadContext":
        node_ids = graph.node_ids()
        edge_samples = []
        for edge in graph.all_edges():
            edge_samples.append((edge.source, edge.edge_type, edge.destination))
            if len(edge_samples) >= max_edge_samples:
                break
        num_edge_types = 1 + max(
            (edge.edge_type for edge in graph.all_edges()), default=0
        )
        return cls(
            node_ids=node_ids,
            edge_samples=edge_samples,
            num_edge_types=num_edge_types,
            rng=rng,
            node_skew=node_skew,
            next_node_id=(max(node_ids) + 1) if node_ids else 0,
        )

    # -- samplers --------------------------------------------------------

    def sample_node(self) -> int:
        """A query-target node: uniform, or zipf-skewed toward low ids
        (the celebrities of the synthetic social graphs)."""
        if self.node_skew > 1.0:
            rank = int(self.rng.zipf(self.node_skew)) - 1
            return self.node_ids[min(rank, len(self.node_ids) - 1)]
        return self.node_ids[int(self.rng.integers(0, len(self.node_ids)))]

    def sample_edge_type(self) -> int:
        return int(self.rng.integers(0, self.num_edge_types))

    def sample_edge(self) -> Tuple[int, int, int]:
        index = int(self.rng.integers(0, len(self.edge_samples)))
        return self.edge_samples[index]

    def sample_time_window(self) -> Tuple[int, int]:
        """A [t_low, t_high) window inside the dataset's timestamp span."""
        start = TIMESTAMP_BASE + int(self.rng.integers(0, TIMESTAMP_SPAN_SECONDS // 2))
        width = int(self.rng.integers(3600, TIMESTAMP_SPAN_SECONDS // 2))
        return (start, start + width)

    def fresh_node_id(self) -> int:
        node_id = self.next_node_id
        self.next_node_id += 1
        self.added_nodes.append(node_id)
        return node_id

    def fresh_timestamp(self) -> int:
        self.next_timestamp += 1
        return self.next_timestamp


def sample_mix(rng: np.random.Generator, mix: Dict[str, float]) -> str:
    """Draw a query name according to a percentage mix (Table 2)."""
    names = list(mix)
    weights = np.asarray([mix[name] for name in names], dtype=np.float64)
    weights /= weights.sum()
    return names[int(rng.choice(len(names), p=weights))]


def assoc_get_generic(system, node_id, edge_type, id2_set, t_low, t_high):
    """Algorithm 2 on any system: use a native ``assoc_get`` when the
    system provides one (ZipG), otherwise filter a time-range scan."""
    native = getattr(system, "assoc_get", None)
    if native is not None:
        return native(node_id, edge_type, id2_set, t_low, t_high)
    return [
        entry
        for entry in system.edges_in_time_range(node_id, edge_type, t_low, t_high)
        if entry.destination in id2_set
    ]

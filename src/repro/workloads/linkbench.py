"""The LinkBench workload (Table 2, LinkBench column).

Same query set as TAO but a very different mix: ~31% of operations are
writes/updates/deletes, and accesses are skewed toward nodes with large
neighborhoods (§5.2's explanation for every system's lower absolute
throughput and for the hot-server bottleneck in Figure 9(b)).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.model import GraphData
from repro.workloads.properties import LinkBenchPropertyModel
from repro.workloads.tao import TAOWorkload

#: Table 2, "LinkBench %" column.
LINKBENCH_MIX: Dict[str, float] = {
    "assoc_range": 50.6,
    "obj_get": 12.9,
    "assoc_get": 0.52,
    "assoc_count": 4.9,
    "assoc_time_range": 0.15,
    "assoc_add": 9.0,
    "obj_update": 7.4,
    "obj_add": 2.6,
    "assoc_del": 3.0,
    "obj_del": 1.0,
    "assoc_update": 8.0,
}

#: zipf exponent for hot-node access skew.
LINKBENCH_NODE_SKEW = 1.4


class LinkBenchWorkload(TAOWorkload):
    """LinkBench = TAO's query set + write-heavy mix + skewed access."""

    name = "linkbench"

    def __init__(
        self,
        graph: GraphData,
        seed: int = 0,
        mix: Optional[Dict[str, float]] = None,
        node_skew: float = LINKBENCH_NODE_SKEW,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(
            graph,
            seed=seed,
            mix=mix or LINKBENCH_MIX,
            node_skew=node_skew,
            property_model=LinkBenchPropertyModel(rng, scale=0.25),
        )

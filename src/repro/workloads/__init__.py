"""Workloads from the paper's evaluation (§5, Appendix B).

* :mod:`repro.workloads.properties` -- TAO / LinkBench property
  distributions used to annotate graphs (§5, "Datasets").
* :mod:`repro.workloads.graphs` -- synthetic graph generators (social
  power-law, web-like, LinkBench-like).
* :mod:`repro.workloads.tao` -- Facebook TAO query mix (Table 2).
* :mod:`repro.workloads.linkbench` -- LinkBench query mix (Table 2).
* :mod:`repro.workloads.graph_search` -- Graph Search GS1-GS5 (Table 3).
* :mod:`repro.workloads.rpq` -- regular path queries (Appendix B.1).
* :mod:`repro.workloads.traversal` -- BFS traversals (Appendix B.2).
"""

from repro.workloads.graph_search import GRAPH_SEARCH_QUERIES, GraphSearchWorkload
from repro.workloads.graphs import linkbench_graph, social_graph, web_graph
from repro.workloads.linkbench import LINKBENCH_MIX, LinkBenchWorkload
from repro.workloads.properties import (
    LinkBenchPropertyModel,
    TAOPropertyModel,
    annotate_graph,
)
from repro.workloads.tao import TAO_MIX, TAOWorkload
from repro.workloads.traversal import bfs_traversal
from repro.workloads.rpq import PathQuery, RPQEngine, generate_gmark_queries

__all__ = [
    "GRAPH_SEARCH_QUERIES",
    "GraphSearchWorkload",
    "LINKBENCH_MIX",
    "LinkBenchPropertyModel",
    "LinkBenchWorkload",
    "PathQuery",
    "RPQEngine",
    "TAO_MIX",
    "TAOPropertyModel",
    "TAOWorkload",
    "annotate_graph",
    "bfs_traversal",
    "generate_gmark_queries",
    "linkbench_graph",
    "social_graph",
    "web_graph",
]

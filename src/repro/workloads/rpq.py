"""Regular path queries (Appendix B.1).

A regular path query (RPQ) identifies node pairs connected by a path
whose concatenated edge labels (EdgeTypes) match a regular expression.
This module provides:

* a small regex-over-labels language: integer labels, concatenation by
  adjacency or ``/``, alternation ``|``, grouping ``( )``, ``*``, ``+``
  and ``?``;
* a Thompson-NFA evaluator that explores the product of the graph and
  the automaton via the store's neighbor queries -- exactly the
  "sequences of get_neighbor_ids / get_edge_record / get_edge_data"
  execution §4.2 describes. Kleene-star recursion is handled by the
  fixpoint of the product BFS, mirroring ZipG's (serial) transitive
  closure computation;
* a gMark-style generator producing the Appendix's 50-query workload:
  linear paths, branched traversals and recursion-heavy queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

EPSILON = -1


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

@dataclass
class PathQuery:
    """A named regular path query, e.g. ``0/1*`` or ``(0|2)/1``."""

    query_id: str
    expression: str
    kind: str = "linear"  # linear | branched | recursive

    @property
    def is_recursive(self) -> bool:
        return "*" in self.expression or "+" in self.expression


class _Parser:
    """Recursive-descent parser for the label-regex language."""

    def __init__(self, expression: str):
        self._tokens = self._tokenize(expression)
        self._position = 0

    @staticmethod
    def _tokenize(expression: str) -> List[str]:
        tokens: List[str] = []
        number = ""
        for char in expression:
            if char.isdigit():
                number += char
                continue
            if number:
                tokens.append(number)
                number = ""
            if char in "()|*+?":
                tokens.append(char)
            elif char in " /":
                continue  # concatenation separators
            else:
                raise ValueError(f"unexpected character {char!r} in path expression")
        if number:
            tokens.append(number)
        return tokens

    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _take(self) -> str:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def parse(self):
        node = self._alternation()
        if self._peek() is not None:
            raise ValueError(f"trailing tokens in path expression: {self._tokens[self._position:]}")
        return node

    def _alternation(self):
        left = self._concatenation()
        while self._peek() == "|":
            self._take()
            left = ("alt", left, self._concatenation())
        return left

    def _concatenation(self):
        parts = [self._postfix()]
        while self._peek() is not None and self._peek() not in ")|":
            parts.append(self._postfix())
        node = parts[0]
        for part in parts[1:]:
            node = ("cat", node, part)
        return node

    def _postfix(self):
        node = self._atom()
        while self._peek() in ("*", "+", "?"):
            operator = self._take()
            tag = {"*": "star", "+": "plus", "?": "opt"}[operator]
            node = (tag, node)
        return node

    def _atom(self):
        token = self._peek()
        if token is None:
            raise ValueError("unexpected end of path expression")
        if token == "(":
            self._take()
            node = self._alternation()
            if self._peek() != ")":
                raise ValueError("unbalanced parentheses in path expression")
            self._take()
            return node
        if token.isdigit():
            return ("label", int(self._take()))
        raise ValueError(f"unexpected token {token!r} in path expression")


# ----------------------------------------------------------------------
# Thompson NFA
# ----------------------------------------------------------------------

@dataclass
class NFA:
    """Nondeterministic finite automaton over edge labels."""

    start: int
    accept: int
    transitions: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    # transitions[state] = [(label_or_EPSILON, next_state), ...]

    def add(self, state: int, label: int, target: int) -> None:
        self.transitions.setdefault(state, []).append((label, target))

    def labels(self) -> Set[int]:
        return {
            label
            for edges in self.transitions.values()
            for (label, _) in edges
            if label != EPSILON
        }

    def epsilon_closure(self, states: Iterable[int]) -> Set[int]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for label, target in self.transitions.get(state, []):
                if label == EPSILON and target not in closure:
                    closure.add(target)
                    stack.append(target)
        return closure

    def step(self, states: Iterable[int], label: int) -> Set[int]:
        """States reachable by consuming ``label`` (closure applied)."""
        moved = {
            target
            for state in states
            for (lbl, target) in self.transitions.get(state, [])
            if lbl == label
        }
        return self.epsilon_closure(moved)

    def first_labels(self) -> Set[int]:
        """Labels that can begin a matching path."""
        return {
            label
            for state in self.epsilon_closure({self.start})
            for (label, _) in self.transitions.get(state, [])
            if label != EPSILON
        }

    def accepts_empty(self) -> bool:
        return self.accept in self.epsilon_closure({self.start})


def compile_expression(expression: str) -> NFA:
    """Compile a path expression to a Thompson NFA."""
    ast = _Parser(expression).parse()
    counter = [0]

    def new_state() -> int:
        counter[0] += 1
        return counter[0] - 1

    nfa = NFA(start=0, accept=0)

    def build(node) -> Tuple[int, int]:
        tag = node[0]
        if tag == "label":
            begin, end = new_state(), new_state()
            nfa.add(begin, node[1], end)
            return begin, end
        if tag == "cat":
            begin_a, end_a = build(node[1])
            begin_b, end_b = build(node[2])
            nfa.add(end_a, EPSILON, begin_b)
            return begin_a, end_b
        if tag == "alt":
            begin, end = new_state(), new_state()
            begin_a, end_a = build(node[1])
            begin_b, end_b = build(node[2])
            nfa.add(begin, EPSILON, begin_a)
            nfa.add(begin, EPSILON, begin_b)
            nfa.add(end_a, EPSILON, end)
            nfa.add(end_b, EPSILON, end)
            return begin, end
        if tag in ("star", "plus", "opt"):
            begin, end = new_state(), new_state()
            inner_begin, inner_end = build(node[1])
            nfa.add(begin, EPSILON, inner_begin)
            nfa.add(inner_end, EPSILON, end)
            if tag in ("star", "opt"):
                nfa.add(begin, EPSILON, end)
            if tag in ("star", "plus"):
                nfa.add(inner_end, EPSILON, inner_begin)
            return begin, end
        raise AssertionError(f"unknown AST tag {tag!r}")

    nfa.start, nfa.accept = build(ast)
    return nfa


# ----------------------------------------------------------------------
# Evaluation (product BFS over the store)
# ----------------------------------------------------------------------

class RPQEngine:
    """Evaluates path queries against any evaluated system.

    The engine only needs two operations from the store: typed neighbor
    lists (``get_neighbor_ids(node, label)``) and, to seed wildcard
    evaluations, all sources carrying a label. The latter is derived
    from a one-time label -> sources index built with typed neighbor
    queries, standing in for ZipG's ``get_edge_record(*, edgeType)``.
    """

    def __init__(self, system, all_node_ids: Sequence[int]):
        self._system = system
        self._node_ids = list(all_node_ids)
        self._sources_by_label: Dict[int, List[int]] = {}

    def _sources_with_label(self, label: int) -> List[int]:
        if label not in self._sources_by_label:
            self._sources_by_label[label] = [
                node
                for node in self._node_ids
                if self._system.get_neighbor_ids(node, label)
            ]
        return self._sources_by_label[label]

    def evaluate(
        self,
        query: PathQuery,
        start_nodes: Optional[Sequence[int]] = None,
        max_results: Optional[int] = None,
    ) -> Set[Tuple[int, int]]:
        """All (start, end) node pairs connected by a matching path."""
        nfa = compile_expression(query.expression)
        if start_nodes is None:
            seeds: Set[int] = set()
            for label in nfa.first_labels():
                seeds.update(self._sources_with_label(label))
            if nfa.accepts_empty():
                seeds.update(self._node_ids)
        else:
            seeds = set(start_nodes)

        results: Set[Tuple[int, int]] = set()
        for seed in sorted(seeds):
            for end in self._evaluate_from(nfa, seed):
                results.add((seed, end))
                if max_results is not None and len(results) >= max_results:
                    return results
        return results

    def _evaluate_from(self, nfa: NFA, seed: int) -> Set[int]:
        """Fixpoint BFS over (node, nfa-state) pairs from one seed."""
        initial = frozenset(nfa.epsilon_closure({nfa.start}))
        frontier: List[Tuple[int, frozenset]] = [(seed, initial)]
        visited: Set[Tuple[int, frozenset]] = {(seed, initial)}
        reachable: Set[int] = set()
        labels = nfa.labels()
        while frontier:
            node, states = frontier.pop()
            if nfa.accept in states:
                reachable.add(node)
            for label in labels:
                next_states = frozenset(nfa.step(states, label))
                if not next_states:
                    continue
                for neighbor in self._system.get_neighbor_ids(node, label):
                    key = (neighbor, next_states)
                    if key not in visited:
                        visited.add(key)
                        frontier.append(key)
        return reachable


# ----------------------------------------------------------------------
# gMark-style query generation (Appendix B.1)
# ----------------------------------------------------------------------

def generate_gmark_queries(
    num_queries: int = 50, num_labels: int = 5, seed: int = 0
) -> List[PathQuery]:
    """A 50-query workload of widely varying nature: linear path
    traversals, branched traversals and highly recursive queries."""
    rng = np.random.default_rng(seed)
    queries: List[PathQuery] = []

    def label() -> str:
        return str(int(rng.integers(0, num_labels)))

    for index in range(num_queries):
        shape = ("linear", "branched", "recursive")[index % 3]
        if shape == "linear":
            length = int(rng.integers(2, 5))
            expression = "/".join(label() for _ in range(length))
        elif shape == "branched":
            left = "/".join(label() for _ in range(int(rng.integers(1, 3))))
            right = "/".join(label() for _ in range(int(rng.integers(1, 3))))
            tail = label()
            expression = f"({left}|{right})/{tail}"
        else:
            head = label()
            star = label()
            expression = f"{head}/{star}*" if rng.random() < 0.5 else f"({head}|{star})+"
        queries.append(PathQuery(f"q{index + 1}", expression, shape))
    return queries

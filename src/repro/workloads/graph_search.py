"""The Graph Search workload (Table 3) -- GS1 through GS5.

Mixes random access (GS1, GS4, GS5) and search (GS2, GS3) queries in
equal proportion. GS2 and GS3 additionally support the *join* execution
plan of Appendix B.3: the same query answered by intersecting two
sub-query result sets instead of probing neighbors' properties.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.core.model import GraphData
from repro.workloads.base import Operation, WorkloadContext
from repro.workloads.properties import CITIES, INTERESTS

GRAPH_SEARCH_QUERIES = ("GS1", "GS2", "GS3", "GS4", "GS5")


class GraphSearchWorkload:
    """Generates GS1-GS5 operations (equal proportions, Table 3)."""

    name = "graph-search"

    def __init__(self, graph: GraphData, seed: int = 0, use_joins: bool = False):
        self.rng = np.random.default_rng(seed)
        self.context = WorkloadContext.from_graph(graph, self.rng)
        self.use_joins = use_joins

    def _sample_city(self) -> str:
        return str(self.rng.choice(CITIES))

    def _sample_interest(self) -> str:
        return str(self.rng.choice(INTERESTS))

    # ------------------------------------------------------------------
    # Query builders (Table 3 rows)
    # ------------------------------------------------------------------

    def make_operation(self, name: str) -> Operation:
        builder = getattr(self, f"_build_{name.lower()}")
        return builder()

    def _build_gs1(self) -> Operation:
        # All friends of Alice: get_neighbor_ids(id, *, *)
        node = self.context.sample_node()
        return Operation("GS1", lambda s: s.get_neighbor_ids(node, "*"), target=node)

    def _build_gs2(self) -> Operation:
        # Alice's friends in Ithaca: get_neighbor_ids(id, *, {p1})
        node, city = self.context.sample_node(), self._sample_city()
        if self.use_joins:
            return Operation("GS2", lambda s: gs2_with_join(s, node, {"city": city}), target=node)
        return Operation(
            "GS2", lambda s: s.get_neighbor_ids(node, "*", {"city": city}), target=node
        )

    def _build_gs3(self) -> Operation:
        # Musicians in Ithaca: get_node_ids({p1, p2})
        city, interest = self._sample_city(), self._sample_interest()
        if self.use_joins:
            return Operation(
                "GS3",
                lambda s: gs3_with_join(s, {"city": city}, {"interest": interest}),
            )
        return Operation(
            "GS3", lambda s: s.get_node_ids({"city": city, "interest": interest})
        )

    def _build_gs4(self) -> Operation:
        # Close friends of Alice: get_neighbor_ids(id, type, *)
        node, etype = self.context.sample_node(), self.context.sample_edge_type()
        return Operation("GS4", lambda s: s.get_neighbor_ids(node, etype), target=node)

    def _build_gs5(self) -> Operation:
        # All data on Alice's friends: assoc_range(id, type, 0, *)
        node, etype = self.context.sample_node(), self.context.sample_edge_type()
        return Operation("GS5", lambda s: s.edges_from_index(node, etype, 0, None), target=node)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def operations(self, count: int) -> Iterator[Operation]:
        """``count`` operations cycling through GS1-GS5 equally."""
        for index in range(count):
            yield self.make_operation(GRAPH_SEARCH_QUERIES[index % 5])

    def operations_of(self, name: str, count: int) -> Iterator[Operation]:
        if name not in GRAPH_SEARCH_QUERIES:
            raise ValueError(f"unknown Graph Search query {name!r}")
        for _ in range(count):
            yield self.make_operation(name)


# ----------------------------------------------------------------------
# Join-based execution plans (Appendix B.3)
# ----------------------------------------------------------------------

def gs2_with_join(system, node_id: int, property_list: dict) -> List[int]:
    """GS2 via a join: all friends INTERSECT all people matching the
    property (e.g. all of Alice's friends ∩ everyone in Ithaca)."""
    friends = set(system.get_neighbor_ids(node_id, "*"))
    matching = set(system.get_node_ids(property_list))
    return sorted(friends & matching)


def gs3_with_join(system, first: dict, second: dict) -> List[int]:
    """GS3 via a join: one sub-query per property pair, intersected."""
    left = set(system.get_node_ids(first))
    right = set(system.get_node_ids(second))
    return sorted(left & right)

"""The Facebook TAO workload (Table 2).

Eleven query types with the published TAO production percentages.
Read-dominated: ~99.8% of operations are reads, which is what lets
ZipG's immutable compressed shards shine (§5.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from repro.core.model import GraphData
from repro.workloads.base import (
    Operation,
    WorkloadContext,
    assoc_get_generic,
    sample_mix,
)
from repro.workloads.properties import TAOPropertyModel

#: Table 2, "TAO %" column.
TAO_MIX: Dict[str, float] = {
    "assoc_range": 40.8,
    "obj_get": 28.8,
    "assoc_get": 15.7,
    "assoc_count": 11.7,
    "assoc_time_range": 2.8,
    "assoc_add": 0.1,
    "obj_update": 0.04,
    "obj_add": 0.03,
    "assoc_del": 0.02,
    "obj_del": 0.009,
    "assoc_update": 0.009,
}

DEFAULT_RANGE_LIMIT = 10


class TAOWorkload:
    """Generates TAO operations against a loaded dataset.

    Args:
        graph: the dataset (used only for sampling query arguments).
        seed: RNG seed (operation streams are deterministic).
        mix: query-type percentages; defaults to Table 2's TAO column.
        node_skew: zipf exponent for target-node sampling (0 = uniform,
            TAO's access pattern; LinkBench overrides this).
        property_model: source of PropertyLists for writes.
    """

    name = "tao"

    def __init__(
        self,
        graph: GraphData,
        seed: int = 0,
        mix: Optional[Dict[str, float]] = None,
        node_skew: float = 0.0,
        property_model=None,
    ):
        self.rng = np.random.default_rng(seed)
        self.mix = dict(mix or TAO_MIX)
        self.context = WorkloadContext.from_graph(graph, self.rng, node_skew=node_skew)
        self.property_model = property_model or TAOPropertyModel(self.rng, scale=0.05)

    # ------------------------------------------------------------------
    # Operation builders (one per Table 2 row)
    # ------------------------------------------------------------------

    def make_operation(self, name: str) -> Operation:
        builder = getattr(self, f"_build_{name}")
        return builder()

    def _build_assoc_range(self) -> Operation:
        node, etype = self.context.sample_node(), self.context.sample_edge_type()
        index = int(self.rng.integers(0, 4))
        return Operation(
            "assoc_range",
            lambda s: s.edges_from_index(node, etype, index, DEFAULT_RANGE_LIMIT),
            target=node,
        )

    def _build_obj_get(self) -> Operation:
        node = self.context.sample_node()
        return Operation("obj_get", lambda s: s.get_node_property(node, "*"), target=node)

    def _build_assoc_get(self) -> Operation:
        node, etype = self.context.sample_node(), self.context.sample_edge_type()
        id2_set = {self.context.sample_node() for _ in range(5)}
        t_low, t_high = self.context.sample_time_window()
        return Operation(
            "assoc_get",
            lambda s: assoc_get_generic(s, node, etype, id2_set, t_low, t_high),
            target=node,
        )

    def _build_assoc_count(self) -> Operation:
        node, etype = self.context.sample_node(), self.context.sample_edge_type()
        return Operation("assoc_count", lambda s: s.edge_count(node, etype), target=node)

    def _build_assoc_time_range(self) -> Operation:
        node, etype = self.context.sample_node(), self.context.sample_edge_type()
        t_low, t_high = self.context.sample_time_window()
        return Operation(
            "assoc_time_range",
            lambda s: s.edges_in_time_range(node, etype, t_low, t_high, DEFAULT_RANGE_LIMIT),
            target=node,
        )

    def _build_assoc_add(self) -> Operation:
        source, etype = self.context.sample_node(), self.context.sample_edge_type()
        destination = self.context.sample_node()
        timestamp = self.context.fresh_timestamp()
        properties = self.property_model.edge_properties()
        return Operation(
            "assoc_add",
            lambda s: s.append_edge(source, etype, destination, timestamp, properties),
            target=source,
        )

    def _build_obj_update(self) -> Operation:
        node = self.context.sample_node()
        properties = self.property_model.node_properties()
        return Operation("obj_update", lambda s: s.update_node(node, properties), target=node)

    def _build_obj_add(self) -> Operation:
        node = self.context.fresh_node_id()
        properties = self.property_model.node_properties()
        return Operation("obj_add", lambda s: s.append_node(node, properties), target=node)

    def _build_assoc_del(self) -> Operation:
        source, etype, destination = self.context.sample_edge()
        return Operation("assoc_del", lambda s: s.delete_edge(source, etype, destination), target=source)

    def _build_obj_del(self) -> Operation:
        # Prefer deleting previously added nodes so the base graph's
        # sampling population stays intact across long runs.
        if self.context.added_nodes:
            node = self.context.added_nodes.pop()
        else:
            node = self.context.fresh_node_id()
        return Operation("obj_del", lambda s: s.delete_node(node), target=node)

    def _build_assoc_update(self) -> Operation:
        source, etype, destination = self.context.sample_edge()
        timestamp = self.context.fresh_timestamp()
        properties = self.property_model.edge_properties()
        return Operation(
            "assoc_update",
            lambda s: s.update_edge(source, etype, destination, timestamp, properties),
            target=source,
        )

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def operations(self, count: int) -> Iterator[Operation]:
        """``count`` operations drawn from the query mix."""
        for _ in range(count):
            yield self.make_operation(sample_mix(self.rng, self.mix))

    def operations_of(self, name: str, count: int) -> Iterator[Operation]:
        """``count`` operations of a single query type (the per-query
        isolation runs of Figures 6-8)."""
        if name not in self.mix:
            raise ValueError(f"unknown TAO query {name!r}")
        for _ in range(count):
            yield self.make_operation(name)

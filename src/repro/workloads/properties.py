"""Property models used to annotate the evaluation graphs (§5).

Real-world datasets: "node and edge property distribution from the
Facebook TAO paper -- each node has an average PropertyList of 640
bytes distributed across 40 PropertyIDs; each edge is randomly assigned
one of 5 distinct EdgeTypes, a POSIX timestamp drawn from a span of 50
days, and a 128-byte edge property."

LinkBench datasets: "a single property per node and edge, with
properties having a median size of 128 bytes."

A few PropertyIDs are categorical with small vocabularies (city,
interest) so that search workloads (Graph Search GS2/GS3 -- "musicians
in Ithaca") have selective, meaningful predicates; the rest are filler
strings sized so the totals match the paper's distributions.
"""

from __future__ import annotations

import string
from typing import Dict, List

import numpy as np

from repro.core.model import GraphData, PropertyList

NUM_EDGE_TYPES = 5

#: Default for the baseline stores' secondary indexes (Neo4j schema
#: indexes / Titan composite indexes): ``None`` = index every node
#: property, as the paper's deployments did to support the workloads
#: (the Figure 5 overhead source). Pass an explicit set to model
#: selective indexing (used by the ablation benches).
INDEXED_PROPERTY_IDS = None
TIMESTAMP_SPAN_SECONDS = 50 * 24 * 3600  # 50 days
TIMESTAMP_BASE = 1_400_000_000  # an arbitrary POSIX epoch anchor

CITIES = [
    "Ithaca", "Boston", "Berkeley", "Chicago", "Princeton", "Seattle",
    "Austin", "Denver", "Atlanta", "Portland", "Madison", "Ann Arbor",
    "Palo Alto", "Cambridge", "Davis", "Eugene", "Tucson", "Boulder",
    "Durham", "Evanston",
]
INTERESTS = [
    "Music", "Films", "Sports", "Cooking", "Travel", "Books",
    "Gaming", "Art", "Hiking", "Photography",
]

_ALPHABET = np.frombuffer(
    (string.ascii_letters + string.digits + " ").encode("ascii"), dtype=np.uint8
)

# Small vocabulary for TAO-style values: real-world profile text is
# highly redundant, which is what makes the real-world datasets more
# compressible than LinkBench's synthetic payloads (§5.1).
_WORDS = [
    "music", "travel", "coffee", "graph", "query", "store", "photo",
    "friend", "update", "social", "network", "campus", "coding", "pizza",
    "league", "film", "hiking", "summer", "winter", "market", "studio",
    "garden", "novel", "street", "cloud", "river", "mountain", "city",
]


def random_string(rng: np.random.Generator, length: int) -> str:
    """A printable random string of exactly ``length`` characters
    (high entropy -- used for LinkBench-style payloads)."""
    if length <= 0:
        return ""
    return bytes(rng.choice(_ALPHABET, size=length)).decode("ascii")


def random_text(rng: np.random.Generator, length: int) -> str:
    """Natural-language-like text of ~``length`` characters drawn from a
    small vocabulary (low entropy -- used for TAO-style values)."""
    if length <= 0:
        return ""
    words = []
    size = 0
    while size < length:
        word = _WORDS[int(rng.integers(0, len(_WORDS)))]
        words.append(word)
        size += len(word) + 1
    return " ".join(words)[:length].rstrip() or "x"


class TAOPropertyModel:
    """TAO-style node and edge properties.

    Args:
        rng: numpy random generator (determinism: pass a seeded one).
        num_property_ids: distinct node PropertyIDs (paper: 40).
        node_bytes: average total PropertyList size per node (paper: 640).
        edge_property_bytes: edge property size (paper: 128).
        scale: shrink factor for value sizes (keeps the *distribution
            shape* while making MB-scale runs fast); 1.0 = paper sizes.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        num_property_ids: int = 40,
        node_bytes: int = 640,
        edge_property_bytes: int = 128,
        scale: float = 1.0,
    ):
        self._rng = rng
        self._num_property_ids = num_property_ids
        self._node_bytes = max(num_property_ids, int(node_bytes * scale))
        self._edge_property_bytes = max(4, int(edge_property_bytes * scale))

    def property_ids(self) -> List[str]:
        """All node PropertyIDs this model can emit."""
        ids = ["city", "interest"]
        ids += [f"attr{i:02d}" for i in range(self._num_property_ids - 2)]
        return ids

    def edge_property_ids(self) -> List[str]:
        return ["payload"]

    def node_properties(self) -> PropertyList:
        """One node's PropertyList (~``node_bytes`` total, 40 ids)."""
        rng = self._rng
        properties: Dict[str, str] = {
            "city": str(rng.choice(CITIES)),
            "interest": str(rng.choice(INTERESTS)),
        }
        filler_ids = self._num_property_ids - 2
        remaining = max(filler_ids, self._node_bytes - 16)
        # Value sizes vary around the mean (the paper's point that sizes
        # differ significantly, motivating the length metadata).
        mean = remaining / filler_ids
        sizes = np.clip(rng.poisson(mean, filler_ids), 1, None)
        for index in range(filler_ids):
            properties[f"attr{index:02d}"] = random_text(rng, int(sizes[index]))
        return properties

    def edge_properties(self) -> PropertyList:
        return {"payload": random_text(self._rng, self._edge_property_bytes)}

    def edge_type(self) -> int:
        return int(self._rng.integers(0, NUM_EDGE_TYPES))

    def timestamp(self) -> int:
        return TIMESTAMP_BASE + int(self._rng.integers(0, TIMESTAMP_SPAN_SECONDS))


class LinkBenchPropertyModel:
    """LinkBench-style single ``data`` property per node and edge.

    Sizes are log-normal around a 128-byte median (the paper: "median
    size of 128 bytes"); values are high-entropy, which is what makes
    LinkBench data ~15% less compressible than the TAO-annotated
    real-world graphs (§5.1).
    """

    def __init__(self, rng: np.random.Generator, median_bytes: int = 128, scale: float = 1.0):
        self._rng = rng
        self._median = max(4, int(median_bytes * scale))

    def property_ids(self) -> List[str]:
        return ["data"]

    def edge_property_ids(self) -> List[str]:
        return ["data"]

    def _size(self) -> int:
        return max(1, int(self._median * self._rng.lognormal(0.0, 0.35)))

    def _value(self) -> str:
        # Mostly random with a compressible tail: synthetic LinkBench
        # payloads compress, just ~15% worse than real-world text (§5.1).
        size = self._size()
        wordy = int(size * 0.8)
        return random_text(self._rng, wordy) + random_string(self._rng, size - wordy)

    def node_properties(self) -> PropertyList:
        return {"data": self._value()}

    def edge_properties(self) -> PropertyList:
        return {"data": self._value()}

    def edge_type(self) -> int:
        return int(self._rng.integers(0, NUM_EDGE_TYPES))

    def timestamp(self) -> int:
        return TIMESTAMP_BASE + int(self._rng.integers(0, TIMESTAMP_SPAN_SECONDS))


def annotate_graph(graph: GraphData, model) -> GraphData:
    """Re-emit ``graph`` with node/edge properties drawn from ``model``.

    The input's structure (nodes, edges, types, timestamps if present)
    is preserved; node properties are replaced and edges get the
    model's type/timestamp/properties where they lack them.
    """
    annotated = GraphData()
    for node_id in graph.node_ids():
        annotated.add_node(node_id, model.node_properties())
    for edge in graph.all_edges():
        annotated.add_edge(
            edge.source,
            edge.destination,
            edge.edge_type if edge.edge_type else model.edge_type(),
            edge.timestamp if edge.timestamp else model.timestamp(),
            edge.properties or model.edge_properties(),
        )
    return annotated

"""Graph traversal workload: bounded-depth BFS (Appendix B.2).

The paper's traversal experiment performs breadth-first traversals
starting at 100 randomly selected nodes with depth bounded to 5. The
traversal uses only typed-wildcard neighbor queries, so it runs on any
evaluated system.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

import numpy as np


def bfs_traversal(system, root: int, max_depth: int = 5) -> List[int]:
    """Nodes reachable from ``root`` within ``max_depth`` hops, in BFS
    visit order (root included)."""
    if max_depth < 0:
        raise ValueError("max_depth must be non-negative")
    visited = {root}
    order = [root]
    queue = deque([(root, 0)])
    while queue:
        node, depth = queue.popleft()
        if depth == max_depth:
            continue
        for neighbor in system.get_neighbor_ids(node, "*"):
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append((neighbor, depth + 1))
    return order


def sample_roots(node_ids: Sequence[int], count: int = 100, seed: int = 0) -> List[int]:
    """Random traversal roots (the paper uses 100)."""
    rng = np.random.default_rng(seed)
    population = list(node_ids)
    count = min(count, len(population))
    chosen = rng.choice(len(population), size=count, replace=False)
    return [population[int(index)] for index in chosen]

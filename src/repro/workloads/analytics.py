"""Offline analytics over the serving store.

The paper's introduction contrasts ZipG with batch-processing systems
(GraphLab, GraphX, GraphChi); these helpers show the other direction a
downstream user inevitably wants -- running light analytics directly on
the compressed serving store via its public neighbor queries, no
export/ETL step. All functions take any
:class:`~repro.baselines.interface.GraphStoreInterface` implementor.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def out_degree_distribution(system, node_ids: Sequence[int]) -> Dict[int, int]:
    """Histogram: out-degree -> number of nodes."""
    histogram: Dict[int, int] = {}
    for node in node_ids:
        degree = len(system.get_neighbor_ids(node, "*"))
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def pagerank(
    system,
    node_ids: Sequence[int],
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 1e-8,
) -> Dict[int, float]:
    """Power-iteration PageRank over the store's wildcard adjacency.

    Dangling mass is redistributed uniformly; ranks sum to 1.
    """
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    nodes = list(node_ids)
    if not nodes:
        return {}
    count = len(nodes)
    adjacency: Dict[int, List[int]] = {
        node: [d for d in system.get_neighbor_ids(node, "*") if d in set(nodes)]
        for node in nodes
    }
    ranks = {node: 1.0 / count for node in nodes}
    for _ in range(iterations):
        dangling = sum(ranks[n] for n in nodes if not adjacency[n])
        incoming = {node: 0.0 for node in nodes}
        for node in nodes:
            neighbors = adjacency[node]
            if not neighbors:
                continue
            share = ranks[node] / len(neighbors)
            for neighbor in neighbors:
                incoming[neighbor] += share
        base = (1.0 - damping) / count + damping * dangling / count
        updated = {node: base + damping * incoming[node] for node in nodes}
        delta = sum(abs(updated[n] - ranks[n]) for n in nodes)
        ranks = updated
        if delta < tolerance:
            break
    return ranks


def weakly_connected_components(system, node_ids: Sequence[int]) -> List[List[int]]:
    """Connected components treating every edge as undirected.

    Built on forward neighbor queries only: the reverse direction is
    derived by one adjacency pass (the store does not index in-edges,
    like ZipG itself).
    """
    nodes = list(node_ids)
    node_set = set(nodes)
    undirected: Dict[int, set] = {node: set() for node in nodes}
    for node in nodes:
        for neighbor in system.get_neighbor_ids(node, "*"):
            if neighbor in node_set:
                undirected[node].add(neighbor)
                undirected[neighbor].add(node)
    seen: set = set()
    components: List[List[int]] = []
    for node in nodes:
        if node in seen:
            continue
        stack = [node]
        component = []
        seen.add(node)
        while stack:
            current = stack.pop()
            component.append(current)
            for neighbor in undirected[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(sorted(component))
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def count_triangles(system, node_ids: Sequence[int]) -> int:
    """Number of undirected triangles among ``node_ids``."""
    nodes = list(node_ids)
    node_set = set(nodes)
    undirected: Dict[int, set] = {node: set() for node in nodes}
    for node in nodes:
        for neighbor in system.get_neighbor_ids(node, "*"):
            if neighbor in node_set and neighbor != node:
                undirected[node].add(neighbor)
                undirected[neighbor].add(node)
    triangles = 0
    for a in nodes:
        for b in undirected[a]:
            if b <= a:
                continue
            for c in undirected[a] & undirected[b]:
                if c > b:
                    triangles += 1
    return triangles

"""Synthetic graph structure generators (§5, Table 4 analogues).

The evaluation uses three real-world graphs (Orkut, Twitter, UK-web)
and three LinkBench-generated social graphs. These generators produce
scaled-down structural analogues: power-law degree distributions with
preferential destination choice for the social graphs, a heavier tail
for the web graph, and LinkBench's skewed social shape for the
LinkBench datasets. Properties are attached separately
(:func:`repro.workloads.properties.annotate_graph`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.model import GraphData
from repro.workloads.properties import (
    LinkBenchPropertyModel,
    TAOPropertyModel,
    annotate_graph,
)


def _power_law_degrees(
    rng: np.random.Generator, num_nodes: int, avg_degree: float, exponent: float
) -> np.ndarray:
    """Out-degree per node following a truncated discrete power law,
    rescaled to hit the requested average degree."""
    raw = rng.zipf(exponent, num_nodes).astype(np.float64)
    raw = np.minimum(raw, num_nodes)  # truncate the extreme tail
    degrees = np.maximum(1, np.round(raw * (avg_degree / raw.mean()))).astype(np.int64)
    return np.minimum(degrees, max(1, num_nodes - 1))


def _preferential_destinations(
    rng: np.random.Generator, num_nodes: int, count: int, skew: float
) -> np.ndarray:
    """Destination sampling with popularity skew: low node ids are the
    celebrities (zipf-ranked), matching social-graph in-degree skew."""
    ranks = rng.zipf(skew, count)
    return np.minimum(ranks - 1, num_nodes - 1)


def _structure(
    rng: np.random.Generator,
    num_nodes: int,
    avg_degree: float,
    degree_exponent: float,
    destination_skew: float,
) -> GraphData:
    graph = GraphData()
    for node_id in range(num_nodes):
        graph.add_node(node_id)
    degrees = _power_law_degrees(rng, num_nodes, avg_degree, degree_exponent)
    for source in range(num_nodes):
        destinations = _preferential_destinations(
            rng, num_nodes, int(degrees[source]), destination_skew
        )
        for destination in destinations:
            if destination != source:
                graph.add_edge(source, int(destination))
    return graph


def social_graph(
    num_nodes: int,
    avg_degree: float = 8.0,
    seed: int = 0,
    property_scale: float = 1.0,
    annotate: bool = True,
) -> GraphData:
    """An Orkut/Twitter-like social graph with TAO properties."""
    rng = np.random.default_rng(seed)
    graph = _structure(rng, num_nodes, avg_degree, degree_exponent=2.2, destination_skew=1.8)
    if not annotate:
        return graph
    model = TAOPropertyModel(rng, scale=property_scale)
    return annotate_graph(graph, model)


def web_graph(
    num_nodes: int,
    avg_degree: float = 12.0,
    seed: int = 0,
    property_scale: float = 1.0,
    annotate: bool = True,
) -> GraphData:
    """A UK-web-like graph: denser, heavier-tailed than the social one."""
    rng = np.random.default_rng(seed)
    graph = _structure(rng, num_nodes, avg_degree, degree_exponent=1.9, destination_skew=1.5)
    if not annotate:
        return graph
    model = TAOPropertyModel(rng, scale=property_scale)
    return annotate_graph(graph, model)


def linkbench_graph(
    num_nodes: int,
    avg_degree: float = 5.0,
    seed: int = 0,
    property_scale: float = 1.0,
) -> GraphData:
    """A LinkBench-generated-style social graph: single high-entropy
    ``data`` property per node/edge, heavily skewed neighborhoods
    ("some nodes have very large neighborhoods, most have few", §5.2)."""
    rng = np.random.default_rng(seed)
    graph = _structure(rng, num_nodes, avg_degree, degree_exponent=1.7, destination_skew=1.6)
    model = LinkBenchPropertyModel(rng, scale=property_scale)
    return annotate_graph(graph, model)


def zipf_node_sampler(
    rng: np.random.Generator, num_nodes: int, skew: Optional[float] = 1.5
):
    """Returns a callable sampling query-target node ids; skewed access
    (LinkBench's hot-node pattern) or uniform when ``skew`` is None."""
    if skew is None:
        def uniform() -> int:
            return int(rng.integers(0, num_nodes))
        return uniform

    def skewed() -> int:
        return int(min(rng.zipf(skew) - 1, num_nodes - 1))

    return skewed

"""The gateway service: admission -> queue -> batch -> dispatch.

One :class:`GatewayService` fronts a backend exposing the awaitable
submission seam (``submit(method, *args, **kwargs) -> Future``) --
a local :class:`~repro.cluster.cluster.ZipGCluster` or a remote
:class:`~repro.server.client.ZipGClient`; the service never knows
which.  The request pipeline, per call:

1. **route** -- classify the method (:mod:`repro.gateway.router`);
   admin verbs bypass admission entirely;
2. **admit** -- chaos site ``gateway.admit``, then the tenant's token
   bucket + bounded queue (:mod:`repro.gateway.admission`); overflow
   and rate-limit rejections raise :class:`RetryAfter` here, *before*
   the request consumes any backend capacity;
3. **queue** -- admitted work parks in its tenant's FIFO; dispatcher
   coroutines drain the queues round-robin across tenants, so one hot
   tenant's backlog cannot starve another's single request;
4. **batch** -- identical in-flight reads coalesce: one leader issues
   the backend call, riders await its result without holding a
   dispatcher slot (the async face of the executor's ``map_shared``
   and the store's :class:`~repro.perf.coalesce.BatchCoalescer`);
5. **dispatch** -- chaos site ``gateway.dispatch``, then
   ``asyncio.wrap_future(backend.submit(...))``.  Reads flagged for
   degradation go out with ``partial_results=True`` instead of
   failing -- a shed that returns data.

The whole pipeline is event-loop confined: admission state is only
touched from coroutines, so there are no locks, and the backend seam
is the only place work leaves the loop.  This module is marked
``gateway-path``; analysis rule GATE001 rejects anything here that
would block the loop.
"""
# zipg: gateway-path

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import chaos, obs
from repro.core.errors import GatewayClosed, RetryAfter
from repro.gateway.admission import AdmissionController, QueuedRequest
from repro.gateway.router import Route, resolve

#: Tenant label applied when a request carries none.
DEFAULT_TENANT = "default"


@dataclass
class GatewayConfig:
    """Tuning knobs for one gateway instance."""

    #: Sustained per-tenant admission rate (requests/second).
    tenant_rate: float = 500.0
    #: Per-tenant burst allowance (token-bucket capacity).
    tenant_burst: float = 100.0
    #: Per-tenant queue bound -- the hard backpressure edge.
    queue_depth: int = 64
    #: Fraction of ``queue_depth`` past which sheddable reads degrade
    #: to ``partial_results=True``.
    shed_threshold: float = 0.75
    #: Dispatcher coroutines draining the tenant queues.  Bounds the
    #: gateway's concurrency against the backend (which sizes its own
    #: submission pool to match).
    dispatchers: int = 8


class _Flight:
    """One in-flight backend call that identical reads ride on."""

    __slots__ = ("future", "riders")

    def __init__(self, future: "asyncio.Future") -> None:
        self.future = future
        self.riders = 0


class GatewayService:
    """Admission-controlled async front door over a submission backend.

    Args:
        backend: anything with ``submit(method, *args, **kwargs)``
            returning a ``concurrent.futures.Future``.
        config: admission/queue/dispatch tuning.
        clock: injectable monotonic clock (tests drive the buckets).
    """

    def __init__(self, backend: object, config: Optional[GatewayConfig] = None,
                 clock=time.monotonic) -> None:
        self.backend = backend
        self.config = config or GatewayConfig()
        self._clock = clock
        self._admission = AdmissionController(
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            queue_depth=self.config.queue_depth,
            shed_threshold=self.config.shed_threshold,
            clock=clock,
        )
        self._ring: List[str] = []
        self._cursor = 0
        # Created lazily inside a coroutine so it binds the serving
        # loop (3.9's asyncio primitives capture a loop at construction).
        self._wake: Optional["asyncio.Event"] = None
        self._dispatchers: List["asyncio.Task"] = []
        self._read_flights: Dict[Tuple[object, ...], _Flight] = {}
        self._inflight = 0
        self._draining = False
        self._started = False

    def _wake_event(self) -> "asyncio.Event":
        """The dispatcher wake signal (created on first use, from a
        coroutine, so it belongs to the serving loop)."""
        if self._wake is None:
            self._wake = asyncio.Event()
        return self._wake

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the dispatcher coroutines (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.config.dispatchers):
            task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(index)
            )
            self._dispatchers.append(task)

    async def drain(self) -> None:
        """Stop admitting, finish every queued request, stop dispatchers.

        New requests see :class:`GatewayClosed` immediately; admitted
        work already in the queues completes normally (a drain is a
        handover, not an amputation).  Returns once the queues are
        empty, every backend call has resolved, and the dispatcher
        coroutines have exited.
        """
        self._draining = True
        self._wake_event().set()  # stays set: dispatchers exit on empty
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
            self._dispatchers = []
        # Belt and braces: anything still queued (a dispatcher died on
        # an injected fault, say) gets a structured rejection rather
        # than a forever-pending future.
        for entry in self._admission.drain_all():
            future = entry.future
            if isinstance(future, asyncio.Future) and not future.done():
                future.set_exception(GatewayClosed("gateway drained"))
        self._set_depth_gauges()

    @property
    def draining(self) -> bool:
        return self._draining

    def queue_depths(self) -> Dict[str, int]:
        return self._admission.depths()

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    async def handle(self, method: str, args: Optional[list] = None,
                     kwargs: Optional[dict] = None,
                     tenant: str = DEFAULT_TENANT) -> object:
        """Run one request through the full pipeline; returns the
        backend's result or raises its typed exception.

        Raises :class:`RetryAfter` when admission sheds the request
        and :class:`GatewayClosed` once :meth:`drain` has begun.
        """
        route = resolve(method)
        call_args = tuple(args or ())
        call_kwargs = dict(kwargs or {})
        with obs.span("gateway.handle", layer="gateway", method=method,
                      tenant=tenant):
            if not route.admission:
                # Admin verbs bypass admission: an operator must be
                # able to inspect an overloaded (or draining) gateway.
                return await self._submit(route, call_args, call_kwargs,
                                          tenant)
            started = self._clock()
            entry = self._admit(route, call_args, call_kwargs, tenant)
            try:
                result = await entry.future
            except asyncio.CancelledError:
                # Waiter cancelled (client gone): the entry may still
                # be queued; mark it abandoned so dispatch skips it.
                entry.future = None
                raise
            self._observe_latency(tenant, self._clock() - started)
            return result

    def _admit(self, route: Route, args: tuple, kwargs: dict,
               tenant: str) -> QueuedRequest:
        chaos.kick(chaos.SITE_GATEWAY_ADMIT, tenant=tenant,
                   method=route.method)
        if self._draining:
            raise GatewayClosed("gateway is draining; not admitting")
        loop = asyncio.get_running_loop()
        try:
            entry = self._admission.admit(
                tenant, route.method, args, kwargs,
                loop.create_future(), sheddable=route.sheddable,
            )
        except RetryAfter as exc:
            obs.counter(
                "zipg_gateway_shed_total",
                help="requests shed by the gateway, by mode",
                labels={"tenant": tenant, "mode": f"reject_{exc.reason}"},
            ).inc()
            raise
        obs.counter(
            "zipg_gateway_admitted_total",
            help="requests past admission control",
            labels={"tenant": tenant},
        ).inc()
        obs.counter(
            "zipg_gateway_queued_total",
            help="admitted requests parked in a tenant queue",
            labels={"tenant": tenant},
        ).inc()
        self._set_depth_gauges()
        self._wake_event().set()
        return entry

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch_loop(self, index: int) -> None:
        wake = self._wake_event()
        while True:
            entry, self._cursor = self._admission.next_entry(
                self._ring, self._cursor
            )
            if entry is None:
                if self._draining:
                    return
                wake.clear()
                # Re-check after clearing: an admit between the failed
                # pop and the clear would otherwise be missed.
                entry, self._cursor = self._admission.next_entry(
                    self._ring, self._cursor
                )
                if entry is None:
                    await wake.wait()
                    continue
            self._set_depth_gauges()
            await self._dispatch_one(entry)

    async def _dispatch_one(self, entry: QueuedRequest) -> None:
        future = entry.future
        if future is None or future.done():
            return  # waiter gave up while the entry was queued
        route = resolve(entry.method)
        kwargs = entry.kwargs
        if entry.degrade:
            kwargs = dict(kwargs)
            kwargs["partial_results"] = True
            obs.counter(
                "zipg_gateway_shed_total",
                help="requests shed by the gateway, by mode",
                labels={"tenant": entry.tenant, "mode": "degrade"},
            ).inc()
        try:
            result = await self._submit(route, entry.args, kwargs,
                                        entry.tenant)
        except BaseException as exc:  # typed remote errors included
            if not future.done():
                future.set_exception(exc)
            return
        if not future.done():
            future.set_result(result)

    async def _submit(self, route: Route, args: tuple, kwargs: dict,
                      tenant: str) -> object:
        """One backend call, deduplicating identical in-flight reads."""
        chaos.kick(chaos.SITE_GATEWAY_DISPATCH, tenant=tenant,
                   method=route.method)
        if route.kind == "admin":
            if route.method == "ping":
                # The caller is probing *this* process's liveness, and
                # the wire contract is the literal "pong" (a ZipGClient
                # backend would normalize it to a bool).
                return "pong"
            if not callable(getattr(self.backend, route.method, None)):
                # Cluster backends carry no RPC admin surface (a remote
                # ZipGClient backend forwards these end-to-end instead).
                return self._admin_local(route.method)
        key = self._flight_key(route, args, kwargs)
        if key is not None:
            flight = self._read_flights.get(key)
            if flight is not None:
                # Ride the leader's in-flight call: no second backend
                # submission, and this dispatcher slot frees up as
                # soon as the await parks.
                flight.riders += 1
                obs.counter(
                    "zipg_gateway_batched_total",
                    help="reads coalesced onto an identical in-flight call",
                    labels={"tenant": tenant},
                ).inc()
                return await asyncio.shield(flight.future)
        self._inflight += 1
        try:
            awaitable = asyncio.wrap_future(
                self.backend.submit(route.method, *args, **kwargs)
            )
            if key is None:
                return await awaitable
            flight = _Flight(asyncio.ensure_future(awaitable))
            self._read_flights[key] = flight
            try:
                return await asyncio.shield(flight.future)
            finally:
                self._read_flights.pop(key, None)
        finally:
            self._inflight -= 1

    def _admin_local(self, method: str) -> object:
        """The non-callable admin verbs, answered from cluster state
        (mirrors :meth:`repro.server.master.MasterServer._admin`)."""
        backend = self.backend
        if method == "topology":
            return {
                "num_servers": getattr(backend, "num_servers", 1),
                "replication_factor": getattr(
                    backend, "replication_factor", 1
                ),
                "num_shards": len(backend.store.shards),
            }
        if method == "down_servers":
            return sorted(getattr(backend, "down_servers", ()))
        raise KeyError(
            f"admin method {method!r} is not supported by "
            f"{type(backend).__name__}"
        )

    @staticmethod
    def _flight_key(route: Route, args: tuple,
                    kwargs: dict) -> Optional[Tuple[object, ...]]:
        """Coalescing key for reads; ``None`` for writes/admin (every
        write must reach the store exactly as many times as issued)."""
        if route.kind != "read":
            return None
        try:
            key = (route.method, args, tuple(sorted(kwargs.items())))
            hash(key)  # dict-valued args only fail at hash time
            return key
        except TypeError:
            # Unhashable argument (a dict-valued property list):
            # canonicalize through repr rather than skip coalescing.
            return (route.method, repr(args),
                    repr(sorted(kwargs.items())))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _set_depth_gauges(self) -> None:
        for tenant, depth in self._admission.depths().items():
            obs.gauge(
                "zipg_gateway_queue_depth",
                help="requests currently parked per tenant queue",
                labels={"tenant": tenant},
            ).set(depth)

    @staticmethod
    def _observe_latency(tenant: str, elapsed_s: float) -> None:
        obs.histogram(
            "zipg_gateway_latency_seconds",
            help="admitted-request latency through the gateway",
            labels={"tenant": tenant},
        ).observe(elapsed_s)

"""Request routing: classify a method before admission sees it.

The router is the gateway's policy table, split out from the service
(mechanism) so admission rules can be reasoned about -- and tested --
without an event loop.  It answers three questions about an incoming
method name:

* is it on the gateway's allowlist at all?  The surface is the
  master's explicit READ/WRITE/ADMIN sets, re-exported rather than
  re-declared, so a verb added to the master is automatically
  routable and nothing else ever is;
* does it consume admission capacity?  Admin verbs (``ping``,
  ``topology``, ...) bypass the token bucket and queues -- an operator
  must be able to inspect an overloaded gateway;
* is it *sheddable*?  Broadcast reads that already support the
  cluster's ``partial_results=True`` degraded mode can be downgraded
  under load instead of rejected.  Point reads and all writes are
  never silently degraded.
"""
# zipg: gateway-path

from __future__ import annotations

from dataclasses import dataclass

from repro.server.master import ADMIN_METHODS, READ_METHODS, WRITE_METHODS

#: Broadcast reads with a documented partial-results degraded mode
#: (the §5.3 all-shard search queries).  Only these may be downgraded
#: by load shedding; everything else is admit-or-reject.
SHEDDABLE_METHODS = frozenset({
    "find_edges",
    "get_node_ids",
})


@dataclass(frozen=True)
class Route:
    """The routing verdict for one method name."""

    method: str
    kind: str  # "read" | "write" | "admin"
    admission: bool  # counted against the tenant's bucket/queue?
    sheddable: bool  # may degrade to partial_results under load?


def resolve(method: str) -> Route:
    """Classify ``method`` or raise ``KeyError`` for off-surface names.

    Raising ``KeyError`` (not a gateway error) keeps the contract
    identical to the master's own dispatch: an unknown verb is a
    protocol violation by the caller, not an overload condition.
    """
    if method in ADMIN_METHODS:
        return Route(method, "admin", admission=False, sheddable=False)
    if method in READ_METHODS:
        return Route(method, "read", admission=True,
                     sheddable=method in SHEDDABLE_METHODS)
    if method in WRITE_METHODS:
        return Route(method, "write", admission=True, sheddable=False)
    raise KeyError(f"unknown gateway method {method!r}")

"""Client for the gateway's RPC surface.

A :class:`GatewayClient` *is* a :class:`~repro.server.client.ZipGClient`
-- the gateway speaks the master's wire protocol -- plus a tenant
identity stamped on every request envelope, which the gateway's
admission control charges against that tenant's token bucket and
queue.  Gateway-origin rejections re-raise client-side as the typed
:class:`~repro.core.errors.RetryAfter` (with its ``retry_after_s``
hint intact) and :class:`~repro.core.errors.GatewayClosed`, so a
caller can tell "the gateway shed me" from "the store failed".
"""
# zipg: gateway-path

from __future__ import annotations

from typing import Optional

from repro.server.client import ZipGClient

#: Tenant applied when callers do not identify themselves.
DEFAULT_TENANT = "default"


class GatewayClient(ZipGClient):
    """Speak to a gateway as one named tenant."""

    def __init__(self, host: str, port: int, tenant: str = DEFAULT_TENANT,
                 timeout_s: Optional[float] = 30.0) -> None:
        super().__init__(host, port, timeout_s=timeout_s)
        self.tenant = tenant
        self._request_extra["tenant"] = tenant

"""The async query gateway: admission-controlled front door (§5).

ZipG's interactive-serving story assumes the store is never driven
past saturation; this package is the layer that makes that assumption
true.  A :class:`GatewayServer` fronts a cluster (or a remote master
via :class:`~repro.server.client.ZipGClient`) with per-tenant token
buckets, bounded queues with structured backpressure
(:class:`~repro.core.errors.RetryAfter`), load shedding that degrades
broadcast reads to the cluster's ``partial_results=True`` path, and
coalescing of identical in-flight reads -- all on one asyncio event
loop, dispatching to the store through the clusters' awaitable
``submit()`` seam.

Layering: ``gateway`` sits above ``cluster`` and ``server`` and below
``cli``/``bench``; nothing below imports it.
"""

from repro.gateway.admission import AdmissionController, TokenBucket
from repro.gateway.client import GatewayClient
from repro.gateway.router import SHEDDABLE_METHODS, Route, resolve
from repro.gateway.server import GATEWAY_SERVER_ID, GatewayServer
from repro.gateway.service import (
    DEFAULT_TENANT,
    GatewayConfig,
    GatewayService,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_TENANT",
    "GATEWAY_SERVER_ID",
    "GatewayClient",
    "GatewayConfig",
    "GatewayServer",
    "GatewayService",
    "Route",
    "SHEDDABLE_METHODS",
    "TokenBucket",
    "resolve",
]

"""Admission control: per-tenant token buckets and bounded queues.

The front door's overload contract (PAPER.md §5.2's interactive-serving
claim only means anything if saturation is handled, not assumed away):

* every tenant owns a :class:`TokenBucket` (sustained rate + burst) and
  a bounded FIFO queue;
* a request that finds its tenant's queue **full** is rejected with a
  structured :class:`~repro.core.errors.RetryAfter` -- never an
  unbounded queue, never a timeout-shaped mystery;
* a request that finds the bucket **empty** is rejected the same way,
  with the bucket's time-to-next-token as the retry hint;
* an admitted request whose queue is already deeper than the shed
  threshold is flagged ``degrade`` -- the service turns sheddable reads
  into ``partial_results=True`` calls instead of failing them.

Everything here is event-loop confined: one coroutine mutates one
tenant's state at a time, so there are no locks and nothing ever
blocks.  Time is injected (``clock``) so tests drive the bucket
deterministically.
"""
# zipg: gateway-path

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import RetryAfter

#: Floor for retry hints so clients never busy-spin on a zero.
MIN_RETRY_AFTER_S = 0.001


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    The bucket starts full (a quiet tenant may burst immediately).
    Refill happens lazily on access from the injected monotonic clock.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/s")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self) -> bool:
        """Consume one token if available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def time_to_token(self) -> float:
        """Seconds until one full token has accumulated."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class QueuedRequest:
    """One admitted request waiting in its tenant's queue."""

    __slots__ = ("tenant", "method", "args", "kwargs", "future",
                 "degrade", "enqueued_at")

    def __init__(self, tenant: str, method: str, args: tuple,
                 kwargs: dict, future: object, degrade: bool,
                 enqueued_at: float) -> None:
        self.tenant = tenant
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.future = future
        self.degrade = degrade
        self.enqueued_at = enqueued_at


class _TenantState:
    __slots__ = ("bucket", "queue")

    def __init__(self, bucket: TokenBucket, queue: "Deque[QueuedRequest]") -> None:
        self.bucket = bucket
        self.queue = queue


class AdmissionController:
    """Per-tenant token buckets + bounded queues, event-loop confined.

    Args:
        tenant_rate: sustained admissions per second per tenant.
        tenant_burst: bucket capacity (instantaneous burst allowance).
        queue_depth: per-tenant queue bound; the hard backpressure edge.
        shed_threshold: fraction of ``queue_depth`` beyond which
            admitted *sheddable* reads are flagged for degradation.
        clock: injectable monotonic clock (tests).
    """

    def __init__(self, tenant_rate: float, tenant_burst: float,
                 queue_depth: int, shed_threshold: float = 0.75,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if not 0.0 < shed_threshold <= 1.0:
            raise ValueError("shed_threshold must be in (0, 1]")
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst)
        self.queue_depth = int(queue_depth)
        self.shed_threshold = float(shed_threshold)
        self._clock = clock
        # Insertion-ordered so the dispatcher's round-robin ring is
        # stable and newly-seen tenants join at the end.
        self._tenants: "OrderedDict[str, _TenantState]" = OrderedDict()

    # ------------------------------------------------------------------
    # Tenant state
    # ------------------------------------------------------------------

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            from collections import deque

            state = _TenantState(
                TokenBucket(self.tenant_rate, self.tenant_burst,
                            clock=self._clock),
                deque(),
            )
            self._tenants[tenant] = state
        return state

    def tenants(self) -> List[str]:
        return list(self._tenants)

    def queue_depth_of(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        return len(state.queue) if state is not None else 0

    def total_queued(self) -> int:
        return sum(len(s.queue) for s in self._tenants.values())

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------

    def admit(self, tenant: str, method: str, args: tuple, kwargs: dict,
              future: object, sheddable: bool) -> QueuedRequest:
        """Admit one request into its tenant's queue or shed it.

        Raises :class:`RetryAfter` (``reason="queue_full"`` or
        ``"rate_limit"``) when the request must not enter the system;
        otherwise consumes a token, enqueues, and returns the entry
        (``entry.degrade`` set when the queue is past the shed
        threshold and the read supports partial results).
        """
        state = self._state(tenant)
        depth = len(state.queue)
        if depth >= self.queue_depth:
            # Hint: the time the backlog needs to drain at the
            # admitted rate -- the earliest a retry could find room.
            raise RetryAfter(
                retry_after_s=max(MIN_RETRY_AFTER_S,
                                  depth / self.tenant_rate),
                reason="queue_full",
            )
        if not state.bucket.try_take():
            raise RetryAfter(
                retry_after_s=max(MIN_RETRY_AFTER_S,
                                  state.bucket.time_to_token()),
                reason="rate_limit",
            )
        degrade = bool(
            sheddable and depth >= self.shed_threshold * self.queue_depth
        )
        entry = QueuedRequest(tenant, method, args, kwargs, future,
                              degrade, self._clock())
        state.queue.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Dispatch-side draining
    # ------------------------------------------------------------------

    def next_entry(self, ring: List[str], cursor: int
                   ) -> Tuple[Optional[QueuedRequest], int]:
        """Pop the next queued request, round-robin across tenants.

        ``ring``/``cursor`` are the caller's rotation state (the service
        owns them so the rotation survives tenant churn); returns the
        entry (or ``None`` when every queue is empty) plus the advanced
        cursor.  One full pass visits every tenant once, so a hot
        tenant's backlog cannot starve a quiet tenant's single request.
        """
        current = self.tenants()
        for name in current:
            if name not in ring:
                ring.append(name)
        if not ring:
            return None, cursor
        for step in range(len(ring)):
            index = (cursor + step) % len(ring)
            state = self._tenants.get(ring[index])
            if state is not None and state.queue:
                return state.queue.popleft(), (index + 1) % len(ring)
        return None, cursor

    def drain_all(self) -> Iterable[QueuedRequest]:
        """Remove and yield every queued entry (shutdown path)."""
        for state in self._tenants.values():
            while state.queue:
                yield state.queue.popleft()

    def depths(self) -> Dict[str, int]:
        return {name: len(state.queue)
                for name, state in self._tenants.items()}

"""The gateway's network face: framed RPC over an asyncio event loop.

A :class:`GatewayServer` listens on the same length-prefixed wire
protocol as the shard and master servers (:mod:`repro.server.ipc` /
:mod:`repro.server.protocol`), so the existing :class:`ZipGClient`
machinery speaks to it unchanged -- the only addition is an optional
``tenant`` field on the request envelope, stamped by
:class:`~repro.gateway.client.GatewayClient` and defaulted here.

Where :class:`~repro.server.shard_server.RpcServerBase` spends a
thread per connection, the gateway is a *front door*: thousands of
idle client connections must cost coroutines, not stacks.  Each
accepted connection is one reader coroutine; each request becomes one
task feeding :class:`~repro.gateway.service.GatewayService`, so a
queued request head-of-line-blocks nothing (responses overtake, the
client correlates by request id, exactly as with the threaded
servers).

Failure semantics match the threaded servers deliberately:

* a request that raises becomes a structured error response (typed
  exceptions -- :class:`RetryAfter` included -- re-raise client-side);
* a vanished peer kills only its own reader;
* :class:`~repro.chaos.SimulatedCrash` out of a ``gateway.*`` or
  ``rpc.send`` chaos rule is a process death: the listener closes,
  every connection resets, nothing is half-alive.
"""
# zipg: gateway-path

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Optional, Set, Tuple

from repro import chaos, obs
from repro.gateway.service import DEFAULT_TENANT, GatewayConfig, GatewayService
from repro.server import ipc
from repro.server.protocol import (
    decode_value,
    make_error_response,
    make_response,
)

#: The gateway's id in chaos tags / metrics (master is -1, shards >= 0).
GATEWAY_SERVER_ID = -2


class GatewayServer:
    """Serve the gateway pipeline over framed TCP RPC.

    Args:
        backend: the submission backend handed to
            :class:`GatewayService` (a cluster or a ``ZipGClient``).
        config: gateway tuning; defaults applied when omitted.
        host / port: bind address; port 0 picks a free port (read the
            chosen one off :attr:`address`).  The bind happens in the
            constructor -- before any event loop exists -- so callers
            learn the port without racing ``serve()``.
    """

    role = "gateway"

    def __init__(self, backend: object,
                 config: Optional[GatewayConfig] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.server_id = GATEWAY_SERVER_ID
        self.service = GatewayService(backend, config)
        self._sock = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._server: Optional["asyncio.AbstractServer"] = None
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._tasks: Set["asyncio.Task"] = set()
        self._stop_requested = threading.Event()
        # Created inside serve() so it binds the serving loop (3.9's
        # asyncio primitives capture a loop at construction).
        self._stopped: Optional["asyncio.Event"] = None
        self._crashed = False
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def serve(self) -> None:
        """Run the gateway on the calling task's event loop until
        :meth:`stop` (the CLI ``serve-gateway`` entry point)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        await self.service.start()
        self._server = await asyncio.start_server(
            self._serve_connection, sock=self._sock
        )
        self._ready.set()
        stopped = self._stopped
        if self._stop_requested.is_set():
            # stop() raced serve(): honor it now that the loop exists.
            stopped.set()
        try:
            await stopped.wait()
        finally:
            await self._shutdown()

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until ``stop()``
        (the CLI ``serve-gateway`` entry point; matches the threaded
        servers' contract)."""
        asyncio.run(self.serve())

    def start(self) -> "GatewayServer":
        """Run :meth:`serve` on a dedicated background thread with its
        own event loop (in-process harnesses and tests); returns once
        the gateway is accepting."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.serve()),
            name=f"zipg-gateway{self.server_id}",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        return self

    def stop(self) -> None:
        """Request shutdown from any thread (idempotent)."""
        self._stop_requested.set()
        loop, stopped = self._loop, self._stopped
        if loop is not None and stopped is not None and loop.is_running():
            loop.call_soon_threadsafe(stopped.set)
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    @property
    def stopped(self) -> bool:
        return self._stop_requested.is_set() or self._crashed

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    async def _shutdown(self) -> None:
        """Close the listener, drain the service, cancel readers."""
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (OSError, RuntimeError):
                pass  # zipg: ignore[ROBUST001] - listener already gone
            self._server = None
        if not self._crashed:
            # Clean drain: queued requests complete, then dispatchers
            # exit.  A crash skips this -- a dead process drains nothing.
            await self.service.drain()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks.clear()

    def _crash(self) -> None:
        """A ``SimulatedCrash`` fired in the pipeline: die like a
        process -- listener closed, every connection reset."""
        if self._crashed:
            return
        self._crashed = True
        obs.counter(
            "zipg_rpc_simulated_crashes_total",
            help="server deaths injected at rpc.* sites",
            labels={"server": str(self.server_id), "role": self.role},
        ).inc()
        self._stop_requested.set()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Connection / request handling
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader: "asyncio.StreamReader",
                                writer: "asyncio.StreamWriter") -> None:
        send_lock = asyncio.Lock()
        try:
            while not self.stopped:
                try:
                    request = await ipc.recv_frame_async(
                        reader, server=self.server_id
                    )
                except (ipc.ConnectionClosed, OSError):
                    return  # peer hung up (or we are stopping)
                except chaos.SimulatedCrash:
                    self._crash()
                    return
                except ipc.FrameError as exc:
                    await self._try_send(writer, send_lock,
                                         make_error_response(-1, exc))
                    return
                task = asyncio.get_running_loop().create_task(
                    self._handle(writer, send_lock, request)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            try:
                writer.close()
            except OSError:
                pass  # zipg: ignore[ROBUST001] - already closed

    async def _handle(self, writer: "asyncio.StreamWriter",
                      send_lock: "asyncio.Lock",
                      request: "dict") -> None:
        request_id = request.get("id")
        if not isinstance(request_id, int):
            request_id = -1
        method = str(request.get("method", ""))
        tenant = str(request.get("tenant") or DEFAULT_TENANT)
        trace = request.get("trace")
        try:
            with obs.remote_span(
                f"gateway.{method}",
                trace if isinstance(trace, dict) else None,
                layer="gateway", method=method, tenant=tenant,
                server=self.server_id,
            ):
                args = [decode_value(arg)
                        for arg in request.get("args", [])]
                kwargs = {
                    key: decode_value(value)
                    for key, value in (request.get("kwargs") or {}).items()
                }
                value = await self.service.handle(method, args, kwargs,
                                                  tenant=tenant)
            response = make_response(request_id, value)
        except chaos.SimulatedCrash:
            self._crash()
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            obs.counter(
                "zipg_rpc_errors_total",
                help="RPC requests answered with an error response",
                labels={"method": method},
            ).inc()
            response = make_error_response(request_id, exc)
        await self._try_send(writer, send_lock, response)

    async def _try_send(self, writer: "asyncio.StreamWriter",
                        send_lock: "asyncio.Lock",
                        response: "dict") -> None:
        try:
            async with send_lock:
                await ipc.send_frame_async(writer, response,
                                           server=self.server_id)
        except chaos.SimulatedCrash:
            self._crash()
        except (OSError, ipc.FrameError) as exc:
            obs.counter(
                "zipg_rpc_send_failures_total",
                help="RPC responses that could not be delivered",
                labels={"kind": type(exc).__name__},
            ).inc()
            try:
                writer.close()
            except OSError:
                pass  # zipg: ignore[ROBUST001] - already closed

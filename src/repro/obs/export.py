"""Exporters: Prometheus text exposition and JSON snapshots.

The Prometheus format follows the text exposition rules closely enough
that real scrapers (and the tiny round-trip parser in the tests) can
consume it: one ``# TYPE`` line per family, label sets sorted, and
histograms emitted as cumulative ``_bucket{le=...}`` series plus
``_sum`` / ``_count``. Collector-published counters (the AccessStats
totals) are emitted as plain counter families.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(pairs: Tuple[Tuple[str, str], ...],
                   extra: Optional[Tuple[Tuple[str, str], ...]] = None) -> str:
    items = list(pairs) + list(extra or ())
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(items))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    families: Dict[str, List[object]] = {}
    kinds: Dict[str, str] = {}
    for metric in registry.metrics():
        name = metric.name  # type: ignore[attr-defined]
        families.setdefault(name, []).append(metric)
        kinds[name] = metric.kind  # type: ignore[attr-defined]

    lines: List[str] = []
    for name in sorted(families):
        lines.append(f"# TYPE {name} {kinds[name]}")
        for metric in families[name]:
            if isinstance(metric, (Counter, Gauge)):
                labels = _render_labels(metric.labels)
                lines.append(f"{name}{labels} {_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                for bound, cumulative in metric.bucket_counts():
                    labels = _render_labels(
                        metric.labels, (("le", _format_value(bound)),)
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _render_labels(metric.labels)
                lines.append(f"{name}_sum{labels} {_format_value(metric.sum)}")
                lines.append(f"{name}_count{labels} {metric.count}")

    collected = registry.collected_counters()
    for name in sorted(collected):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(collected[name])}")
    return "\n".join(lines) + "\n"


def json_snapshot(registry: MetricsRegistry, tracer: Optional[object] = None,
                  indent: Optional[int] = None) -> str:
    """The registry (plus, optionally, a tracer's recent traces and
    layer breakdown) as a JSON document."""
    payload: Dict[str, object] = registry.snapshot()
    if tracer is not None:
        payload["layers"] = tracer.layer_breakdown()  # type: ignore[attr-defined]
        payload["spans"] = tracer.span_summary()  # type: ignore[attr-defined]
        payload["recent_traces"] = [
            trace.to_dict() for trace in list(tracer.traces)  # type: ignore[attr-defined]
        ]
    return json.dumps(payload, indent=indent, sort_keys=True)

"""Per-query trace spans with layer attribution (tentpole of repro.obs).

A :class:`Span` marks one timed region of the query path and carries a
``layer`` tag attributing it to a storage layer (``graph_store`` ->
``shard`` -> ``nodefile``/``edgefile`` -> ``succinct`` kernels, or
``logstore`` / ``pointer`` hops). Spans nest through a
:mod:`contextvars` context variable, so the tree survives the
:class:`~repro.core.executor.ShardExecutor` thread-pool fan-out: the
executor copies the caller's context into each worker task, and child
spans created on worker threads attach to the fanned-out parent.

Tracing is **off by default** and the disabled path costs nothing:
``@obs.traced`` methods are bound to their undecorated functions until
:meth:`Tracer.enable` swaps the span wrappers in (see
:class:`_TracedSite`), and inline ``span()`` sites are a single
attribute check returning a shared no-op span. When enabled, a
``sample_rate`` knob (0 < rate <= 1) decides *per root span* whether a
trace is recorded; unsampled roots still occupy the context slot so
their children know to stay quiet.

On every sampled span finish the tracer folds the span into aggregate
state: a per-span-name duration histogram (in the shared
:class:`~repro.obs.metrics.MetricsRegistry`) and per-layer
exclusive-time/op accumulators -- "exclusive" meaning the span's wall
time minus its direct children's, so one microsecond of work is
attributed to exactly one layer.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, TypeVar

from repro.obs.metrics import MetricsRegistry

F = TypeVar("F", bound=Callable[..., Any])

# Trace/span identity: a per-process random prefix plus a counter is
# unique across the master + shard-server processes of one deployment
# without the cost of a fresh urandom read per span.
_ID_PREFIX = os.urandom(4).hex()
_ID_COUNTER = itertools.count(1)


def _new_id() -> str:
    return f"{_ID_PREFIX}-{next(_ID_COUNTER):x}"

_current_span: "contextvars.ContextVar[Optional[_SpanBase]]" = contextvars.ContextVar(
    "zipg_current_span", default=None
)

#: Span-duration histogram name in the metrics registry (labelled by
#: span name, recorded in microseconds).
SPAN_HISTOGRAM = "zipg_span_duration_us"
LAYER_TIME_COUNTER = "zipg_layer_time_us_total"
LAYER_OPS_COUNTER = "zipg_layer_ops_total"


class _SpanBase:
    """Shared interface so null/unsampled spans are substitutable."""

    __slots__ = ()

    recording = False

    def tag(self, **tags: object) -> None:
        """Attach tags after creation (no-op unless recording)."""

    def __enter__(self) -> "_SpanBase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullSpan(_SpanBase):
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()


NULL_SPAN = NullSpan()


class _UnsampledSpan(_SpanBase):
    """Root placeholder for traces the sampler skipped: occupies the
    context slot so descendants do not masquerade as new roots."""

    __slots__ = ("_token",)

    def __enter__(self) -> "_UnsampledSpan":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _current_span.reset(self._token)


class Span(_SpanBase):
    """One timed, tagged node of a trace tree."""

    __slots__ = (
        "name", "tags", "start_ns", "end_ns", "children",
        "trace_id", "span_id",
        "_tracer", "_parent", "_token", "_lock",
    )

    recording = True

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object],
                 parent: Optional["Span"]):
        self.name = name
        self.tags = tags
        self.start_ns = 0
        self.end_ns = 0
        self.children: List[Span] = []
        #: Roots mint a new trace id; children inherit. RPC requests
        #: carry ``{"trace_id", "span_id"}`` so a server-side
        #: :meth:`Tracer.remote_span` joins the caller's trace.
        self.trace_id = _new_id() if parent is None else parent.trace_id
        self.span_id = _new_id()
        self._tracer = tracer
        self._parent = parent
        self._lock = threading.Lock()

    @property
    def layer(self) -> str:
        return str(self.tags.get("layer", "other"))

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def exclusive_ns(self) -> int:
        """Wall time not covered by direct children.

        Fan-out children run concurrently, so their summed time can
        exceed the parent's wall clock; exclusive time clamps at zero
        rather than going negative.
        """
        return max(0, self.duration_ns - sum(c.duration_ns for c in self.children))

    def tag(self, **tags: object) -> None:
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        if self._parent is not None:
            with self._parent._lock:
                self._parent.children.append(self)
        self._token = _current_span.set(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end_ns = time.perf_counter_ns()
        _current_span.reset(self._token)
        self._tracer._finish(self)

    # -- introspection ---------------------------------------------------

    def walk(self) -> List["Span"]:
        """This span plus every descendant, depth-first."""
        out: List[Span] = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable trace tree."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "tags": {k: v for k, v in self.tags.items()},
            "duration_us": self.duration_ns / 1e3,
            "exclusive_us": self.exclusive_ns / 1e3,
            "children": [child.to_dict() for child in self.children],
        }


class _TracedSite:
    """The product of :meth:`Tracer.traced`.

    Used on a method, ``__set_name__`` records the owning class and
    installs the **undecorated** function while tracing is off, so the
    disabled fast path costs literally nothing -- no wrapper frame, no
    flag check. :meth:`Tracer.enable` swaps the span wrapper in at
    every recorded site; :meth:`Tracer.disable` restores the plain
    functions. Decorating a free function (no class body) skips
    ``__set_name__`` and calls dispatch through :meth:`__call__`, which
    keeps the one-attribute-check fast path.
    """

    def __init__(self, tracer: "Tracer", fn: Callable[..., Any],
                 span_name: str, tags: Dict[str, object]) -> None:
        self.fn = fn
        self.owner: Optional[type] = None
        self.attr_name = ""

        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(span_name, **tags):
                return fn(*args, **kwargs)

        wrapper.__zipg_span__ = span_name  # type: ignore[attr-defined]
        self.wrapper = wrapper
        self.__zipg_span__ = span_name
        self.__name__ = fn.__name__
        self.__qualname__ = fn.__qualname__
        self.__doc__ = fn.__doc__
        self.__wrapped__ = fn
        self._tracer = tracer
        tracer._register_site(self)

    def __set_name__(self, owner: type, name: str) -> None:
        self.owner = owner
        self.attr_name = name
        self.install(self._tracer.enabled)

    def install(self, enabled: bool) -> None:
        """(Re)bind the owning class attribute for the given state."""
        if self.owner is not None:
            setattr(self.owner, self.attr_name,
                    self.wrapper if enabled else self.fn)

    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.wrapper(*args, **kwargs)


class Tracer:
    """Factory and aggregator for spans. One per process (see
    :mod:`repro.obs`); all state is guarded for fan-out threads."""

    def __init__(self, registry: MetricsRegistry, max_traces: int = 64):
        self.enabled = False
        self.sample_rate = 1.0
        self._registry = registry
        self._lock = threading.Lock()
        self._sample_accumulator = 0.0
        self._sites: List[_TracedSite] = []
        self.traces: Deque[Span] = deque(maxlen=max_traces)
        self.dropped_traces = 0

    # -- control ---------------------------------------------------------

    def _register_site(self, site: _TracedSite) -> None:
        with self._lock:
            self._sites.append(site)

    def enable(self, sample_rate: float = 1.0) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self.enabled = True
        with self._lock:
            for site in self._sites:
                site.install(True)

    def disable(self) -> None:
        self.enabled = False
        with self._lock:
            for site in self._sites:
                site.install(False)

    def reset(self) -> None:
        """Clear retained traces and the sampler (keeps enabled state;
        the aggregate counters live in the registry and reset with it)."""
        with self._lock:
            self.traces.clear()
            self.dropped_traces = 0
            self._sample_accumulator = 0.0

    # -- span creation ---------------------------------------------------

    def span(self, name: str, **tags: object) -> _SpanBase:
        """A context manager timing one region: ``with tracer.span(...)``.

        Returns the shared :data:`NULL_SPAN` when tracing is disabled or
        the enclosing trace is unsampled, a placeholder when this would
        start a new root the sampler skipped, and a live :class:`Span`
        otherwise.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = _current_span.get()
        if parent is None:
            if not self._sample_root():
                return _UnsampledSpan()
            return Span(self, name, tags, None)
        if not parent.recording:
            return NULL_SPAN
        assert isinstance(parent, Span)
        return Span(self, name, tags, parent)

    def _sample_root(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        with self._lock:
            self._sample_accumulator += self.sample_rate
            if self._sample_accumulator >= 1.0:
                self._sample_accumulator -= 1.0
                return True
            self.dropped_traces += 1
            return False

    def traced(self, name: Optional[str] = None, **tags: object) -> Callable[[F], F]:
        """Decorator form of :meth:`span`.

        On methods this costs *nothing* while tracing is off: the
        returned :class:`_TracedSite` installs the undecorated function
        on the owning class and :meth:`enable`/:meth:`disable` swap the
        span wrapper in and out. On free functions the disabled fast
        path is one attribute check on top of the wrapped call.
        """

        def decorator(fn: F) -> F:
            span_name = name if name is not None else fn.__qualname__
            return _TracedSite(self, fn, span_name, dict(tags))  # type: ignore[return-value]

        return decorator

    def current(self) -> Optional[_SpanBase]:
        return _current_span.get()

    def current_context(self) -> Optional[Dict[str, str]]:
        """The active span's wire-propagable identity.

        ``None`` when tracing is off or the enclosing trace is not
        being recorded -- callers attach it to outbound RPC requests
        only when there is something to join."""
        span = _current_span.get()
        if isinstance(span, Span):
            return {"trace_id": span.trace_id, "span_id": span.span_id}
        return None

    def remote_span(self, name: str,
                    context: Optional[Dict[str, str]] = None,
                    **tags: object) -> _SpanBase:
        """A server-side span continuing a caller's trace.

        With no ``context`` this is plain :meth:`span`. With one, the
        span adopts the caller's ``trace_id`` and tags the remote
        parent span id -- and bypasses the root sampler, because the
        *caller* already made the sampling decision when it recorded
        the context."""
        if not self.enabled:
            return NULL_SPAN
        if not context:
            return self.span(name, **tags)
        parent = _current_span.get()
        span = Span(self, name, dict(tags),
                    parent if isinstance(parent, Span) else None)
        span.trace_id = str(context.get("trace_id", span.trace_id))
        span.tag(remote_parent=str(context.get("span_id", "")))
        return span

    # -- aggregation -----------------------------------------------------

    def _finish(self, span: Span) -> None:
        layer = span.layer
        self._registry.histogram(
            SPAN_HISTOGRAM, help="span wall time", labels={"span": span.name}
        ).observe(span.duration_ns / 1e3)
        self._registry.counter(
            LAYER_TIME_COUNTER, help="exclusive span time per layer",
            labels={"layer": layer},
        ).inc(span.exclusive_ns / 1e3)
        self._registry.counter(
            LAYER_OPS_COUNTER, help="spans per layer", labels={"layer": layer}
        ).inc()
        if span._parent is None:
            with self._lock:
                self.traces.append(span)

    def layer_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-layer exclusive wall time (us) and span counts, read off
        the registry's layer counters."""
        out: Dict[str, Dict[str, float]] = {}
        for metric in self._registry.metrics():
            name = getattr(metric, "name", "")
            if name not in (LAYER_TIME_COUNTER, LAYER_OPS_COUNTER):
                continue
            labels = dict(metric.labels)  # type: ignore[attr-defined]
            layer = labels.get("layer", "other")
            entry = out.setdefault(layer, {"time_us": 0.0, "spans": 0.0})
            if name == LAYER_TIME_COUNTER:
                entry["time_us"] += metric.value  # type: ignore[attr-defined]
            else:
                entry["spans"] += metric.value  # type: ignore[attr-defined]
        return out

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name latency summary from the registry histograms."""
        out: Dict[str, Dict[str, float]] = {}
        for histogram in self._registry.histograms(SPAN_HISTOGRAM):
            labels = dict(histogram.labels)
            out[labels.get("span", "?")] = histogram.snapshot()
        return out

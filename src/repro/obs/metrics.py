"""Zero-dependency metrics registry: counters, gauges, histograms.

One process-wide :class:`MetricsRegistry` (see :mod:`repro.obs`) holds
every named metric the query path emits, so the Succinct access
counters (:class:`repro.succinct.stats.AccessStats`, published through
*collectors*), the pointer-chase counters, and the span-duration
histograms all surface through a single thread-safe object that the
exporters (:mod:`repro.obs.export`), ``repro stats``, and
``ZipG.snapshot_metrics()`` read.

Metric identity is ``(name, labels)``: two ``counter()`` calls with the
same name and labels return the same instance, so call sites do not
need to coordinate registration. Histograms use fixed bucket bounds
(default: an exponential microsecond ladder) and estimate percentiles
by linear interpolation inside the winning bucket -- accurate enough
for p50/p95/p99 gating without storing raw samples.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds. Unit-agnostic; span latencies
#: are recorded in microseconds, so the ladder spans 1us .. 1s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000,
)

#: A collector returns a flat ``{metric_name: value}`` mapping that is
#: merged additively into the registry's counters at collection time,
#: or ``None`` to unregister itself (e.g. its subject was collected).
Collector = Callable[[], Optional[Mapping[str, float]]]


def _label_pairs(labels: Mapping[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.help = help
        self.labels: LabelPairs = _label_pairs(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.help = help
        self.labels: LabelPairs = _label_pairs(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self.set(0.0)


class Histogram:
    """A fixed-bucket latency histogram with percentile estimation.

    ``observe()`` is O(log buckets); percentiles interpolate linearly
    inside the selected bucket, clamping the open-ended overflow bucket
    at the maximum observed value.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.help = help
        self.labels: LabelPairs = _label_pairs(labels or {})
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow (+Inf) bucket
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Binary search for the first bound >= value.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((math.inf, cumulative + counts[-1]))
        return out

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
            maximum = self._max
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for index, count in enumerate(counts):
            if count:
                upper = self.bounds[index] if index < len(self.bounds) else maximum
                upper = min(upper, maximum)
                if cumulative + count >= target:
                    fraction = (target - cumulative) / count
                    return lower + (max(upper, lower) - lower) * fraction
                cumulative += count
            if index < len(self.bounds):
                lower = min(self.bounds[index], maximum)
        return maximum

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self._max,
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._max = 0.0


Metric = object  # Counter | Gauge | Histogram (3.9-compatible alias)


class MetricsRegistry:
    """Thread-safe get-or-create home for every named metric.

    Besides directly-owned metrics, the registry aggregates
    *collectors*: callables that expose externally-maintained counters
    (the per-shard :class:`AccessStats` objects keep their unlocked
    hot-path increments; a collector publishes their totals here at
    read time, so the hot path pays nothing for the shared registry).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}
        self._collectors: List[Collector] = []

    # -- get-or-create ---------------------------------------------------

    def _get_or_create(self, cls: type, name: str, help: str,
                       labels: Optional[Mapping[str, str]], **kwargs: object) -> object:
        key = (name, _label_pairs(labels or {}))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, labels=labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        metric = self._get_or_create(Counter, name, help, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        metric = self._get_or_create(Gauge, name, help, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labels, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    # -- collectors ------------------------------------------------------

    def register_collector(self, collector: Collector) -> Collector:
        with self._lock:
            self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Collector) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collected_counters(self) -> Dict[str, float]:
        """Additive merge of every live collector's counter mapping."""
        with self._lock:
            collectors = list(self._collectors)
        merged: Dict[str, float] = {}
        dead: List[Collector] = []
        for collector in collectors:
            sample = collector()
            if sample is None:
                dead.append(collector)
                continue
            for name, value in sample.items():
                merged[name] = merged.get(name, 0.0) + float(value)
        if dead:
            with self._lock:
                for collector in dead:
                    if collector in self._collectors:
                        self._collectors.remove(collector)
        return merged

    # -- reading ---------------------------------------------------------

    def metrics(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def histograms(self, name: Optional[str] = None) -> List[Histogram]:
        out = [m for m in self.metrics() if isinstance(m, Histogram)]
        if name is not None:
            out = [m for m in out if m.name == name]
        return out

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable view of every metric and collector."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for metric in self.metrics():
            key = _render_key(metric.name, metric.labels)  # type: ignore[attr-defined]
            if isinstance(metric, Counter):
                counters[key] = counters.get(key, 0.0) + metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[key] = metric.snapshot()
        for name, value in self.collected_counters().items():
            counters[name] = counters.get(name, 0.0) + value
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Zero every owned metric (collectors are left registered --
        their subjects own their own reset)."""
        for metric in self.metrics():
            metric.reset()  # type: ignore[attr-defined]


def _render_key(name: str, labels: Iterable[Tuple[str, str]]) -> str:
    pairs = list(labels)
    if not pairs:
        return name
    inner = ",".join(f"{k}={v}" for k, v in pairs)
    return f"{name}{{{inner}}}"

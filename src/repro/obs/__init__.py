"""``repro.obs``: zero-dependency tracing + metrics for the query path.

The subsystem has three pieces:

* **Spans** (:mod:`repro.obs.tracing`) -- ``with obs.span("shard.find",
  layer="shard", shard=3):`` builds per-query trace trees with wall
  time and layer attribution, propagated across the
  :class:`~repro.core.executor.ShardExecutor` fan-out via contextvars.
  Off by default; ``enable_tracing(sample_rate)`` turns it on.
* **Metrics registry** (:mod:`repro.obs.metrics`) -- named counters,
  gauges, and fixed-bucket latency histograms (p50/p95/p99). The
  per-engine :class:`~repro.succinct.stats.AccessStats` counters
  publish into the same registry through collectors, so storage
  touches and timings share one thread-safe surface.
* **Exporters** (:mod:`repro.obs.export`) -- Prometheus text and JSON,
  surfaced by ``repro stats`` and the bench harness's ``BENCH_*.json``
  artifacts.

This module owns the process-wide singletons. Everything here is
importable from anywhere in the tree (it depends on nothing outside
the standard library), so core modules instrument themselves with
``from repro import obs`` ... ``obs.span(...)`` / ``@obs.traced(...)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, TypeVar

from repro.obs.export import json_snapshot, prometheus_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    LAYER_OPS_COUNTER,
    LAYER_TIME_COUNTER,
    NULL_SPAN,
    SPAN_HISTOGRAM,
    NullSpan,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "Span",
    "Tracer",
    "DEFAULT_BUCKETS",
    "LAYER_OPS_COUNTER",
    "LAYER_TIME_COUNTER",
    "NULL_SPAN",
    "SPAN_HISTOGRAM",
    "counter",
    "current_trace_context",
    "disable_tracing",
    "enable_tracing",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "json_snapshot",
    "prometheus_text",
    "remote_span",
    "reset",
    "snapshot",
    "span",
    "traced",
    "tracing_enabled",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer(_REGISTRY)

_F = TypeVar("_F", bound=Callable[..., object])


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, **tags: object):
    """Open a span on the global tracer (no-op unless tracing is on)."""
    return _TRACER.span(name, **tags)


def traced(name: Optional[str] = None, **tags: object) -> Callable[[_F], _F]:
    """Decorator: wrap a function in a span on the global tracer."""
    return _TRACER.traced(name, **tags)


def current_trace_context() -> Optional[Dict[str, str]]:
    """The active span's ``{"trace_id", "span_id"}`` for RPC requests
    (``None`` unless a recorded span is open)."""
    return _TRACER.current_context()


def remote_span(name: str, context: Optional[Dict[str, str]] = None,
                **tags: object):
    """Open a server-side span continuing a remote caller's trace."""
    return _TRACER.remote_span(name, context, **tags)


def counter(name: str, help: str = "",
            labels: Optional[Mapping[str, str]] = None) -> Counter:
    return _REGISTRY.counter(name, help=help, labels=labels)


def gauge(name: str, help: str = "",
          labels: Optional[Mapping[str, str]] = None) -> Gauge:
    return _REGISTRY.gauge(name, help=help, labels=labels)


def histogram(name: str, help: str = "",
              buckets: Optional[Sequence[float]] = None,
              labels: Optional[Mapping[str, str]] = None) -> Histogram:
    return _REGISTRY.histogram(name, help=help, buckets=buckets, labels=labels)


def enable_tracing(sample_rate: float = 1.0) -> None:
    """Turn span recording on (``sample_rate`` of root spans kept)."""
    _TRACER.enable(sample_rate)


def disable_tracing() -> None:
    _TRACER.disable()


def tracing_enabled() -> bool:
    return _TRACER.enabled


def reset() -> None:
    """Zero every metric and drop retained traces (for bench / tests)."""
    _REGISTRY.reset()
    _TRACER.reset()


def snapshot() -> Dict[str, object]:
    """JSON-serializable snapshot of the registry."""
    return _REGISTRY.snapshot()

"""The ZipQL planner/executor.

Compiles a parsed :class:`~repro.query.parser.Query` onto the Table 1
primitives, following the paper's execution philosophy:

* anchored source patterns seed from ``{id}`` directly or from
  ``get_node_ids`` (one compressed search per property pair);
* single-label edges execute as typed neighbor queries; label-regex
  edges run through the RPQ engine (Appendix B.1);
* target property filters probe each candidate by random access
  (the join-free plan of §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.errors import NodeNotFound
from repro.query.parser import Query, parse_query
from repro.workloads.rpq import PathQuery, RPQEngine


@dataclass
class QueryResult:
    """Rows plus the column names of a ZipQL execution."""

    columns: List[str]
    rows: List[Dict[str, object]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[object]:
        """All values of one output column."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.columns}")
        return [row[name] for row in self.rows]


class QueryEngine:
    """Executes ZipQL queries against any evaluated system."""

    def __init__(self, system, all_node_ids: Sequence[int]):
        self._system = system
        self._node_ids = list(all_node_ids)
        self._rpq = RPQEngine(system, self._node_ids)

    def execute(self, text: str) -> QueryResult:
        """Parse and run a ZipQL query."""
        return self.run(parse_query(text))

    def run(self, query: Query) -> QueryResult:
        """Execute an already-parsed :class:`Query`."""
        bindings = self._match(query)
        bindings = [b for b in bindings if self._passes_where(query, b)]
        columns = [
            item.variable if item.property_id is None
            else f"{item.variable}.{item.property_id}"
            for item in query.returns
        ]
        rows = []
        for binding in bindings:
            row: Dict[str, object] = {}
            for item, column in zip(query.returns, columns):
                if item.property_id is None:
                    row[column] = binding[item.variable]
                else:
                    row[column] = self._property(binding[item.variable], item.property_id)
            rows.append(row)
        return QueryResult(columns, rows)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def _match(self, query: Query) -> List[Dict[str, int]]:
        seeds = self._seed_nodes(query)
        if query.edge is None:
            return [{query.source.variable: node} for node in seeds]

        pairs = self._expand_edge(query, seeds)
        target = query.target
        bindings = []
        for source_node, target_node in pairs:
            if target.node_id is not None and target_node != target.node_id:
                continue
            if target.properties and not self._matches_properties(
                target_node, target.properties
            ):
                continue
            bindings.append({
                query.source.variable: source_node,
                target.variable: target_node,
            })
        return bindings

    def _seed_nodes(self, query: Query) -> List[int]:
        source = query.source
        if source.node_id is not None:
            if source.properties and not self._matches_properties(
                source.node_id, source.properties
            ):
                return []
            return [source.node_id]
        if source.properties:
            return self._system.get_node_ids(dict(source.properties))
        if query.edge is None:
            return list(self._node_ids)
        return []  # unanchored: let the RPQ engine seed by first label

    def _expand_edge(self, query: Query, seeds: List[int]):
        edge = query.edge
        start_nodes = seeds if (query.source.is_anchored or seeds) else None
        if edge.path_expression is None:
            # any single edge: wildcard neighbor query per seed
            nodes = seeds if start_nodes is not None else self._node_ids
            pairs = []
            for node in nodes:
                for destination in self._system.get_neighbor_ids(node, "*"):
                    pairs.append((node, destination))
            return pairs
        if edge.is_single_label and start_nodes is not None:
            label = int(edge.path_expression)
            pairs = []
            for node in seeds:
                for destination in self._system.get_neighbor_ids(node, label):
                    pairs.append((node, destination))
            return pairs
        result = self._rpq.evaluate(
            PathQuery("zipql", edge.path_expression),
            start_nodes=start_nodes,
        )
        return sorted(result)

    # ------------------------------------------------------------------
    # Filters and projections
    # ------------------------------------------------------------------

    def _passes_where(self, query: Query, binding: Dict[str, int]) -> bool:
        for variable, property_id, value in query.predicates:
            if self._property(binding[variable], property_id) != value:
                return False
        return True

    def _matches_properties(self, node_id: int, properties: Dict[str, str]) -> bool:
        try:
            stored = self._system.get_node_property(node_id, list(properties))
        except (NodeNotFound, KeyError):
            return False
        return all(stored.get(k) == v for k, v in properties.items())

    def _property(self, node_id: int, property_id: str) -> Optional[str]:
        try:
            return self._system.get_node_property(node_id, [property_id]).get(property_id)
        except (NodeNotFound, KeyError):
            return None

"""Parser for ZipQL, the Cypher-inspired query language.

Grammar (one linear MATCH pattern per query)::

    query     := MATCH pattern [WHERE predicates] RETURN items
    pattern   := node [edge node]
    node      := "(" IDENT ["{" pairs "}"] ")"
    edge      := "-[" (":" PATHEXPR | "*") "]->"
    pairs     := pair ("," pair)*
    pair      := IDENT ":" STRING | "id" ":" INT
    predicates:= predicate (AND predicate)*
    predicate := IDENT "." IDENT "=" STRING
    items     := item ("," item)*
    item      := IDENT | IDENT "." IDENT

``PATHEXPR`` is the label-regex language of :mod:`repro.workloads.rpq`
(``0``, ``0/1``, ``0|1``, ``2*``, ``(0/1)+`` ...); a bare ``*`` edge
matches any single edge of any type.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ParseError(ValueError):
    """The query text does not conform to the ZipQL grammar."""


@dataclass
class NodePattern:
    """``(var {prop: "value", id: 3})``"""

    variable: str
    properties: Dict[str, str] = field(default_factory=dict)
    node_id: Optional[int] = None

    @property
    def is_anchored(self) -> bool:
        return self.node_id is not None or bool(self.properties)


@dataclass
class EdgePattern:
    """``-[:pathexpr]->`` or the any-single-edge wildcard ``-[*]->``."""

    path_expression: Optional[str]  # None = any single edge

    @property
    def is_single_label(self) -> bool:
        return self.path_expression is not None and self.path_expression.isdigit()


@dataclass
class ReturnItem:
    variable: str
    property_id: Optional[str] = None


@dataclass
class Query:
    """A parsed ZipQL query."""

    source: NodePattern
    edge: Optional[EdgePattern]
    target: Optional[NodePattern]
    predicates: List[Tuple[str, str, str]]  # (variable, property, value)
    returns: List[ReturnItem]

    def variables(self) -> List[str]:
        names = [self.source.variable]
        if self.target is not None:
            names.append(self.target.variable)
        return names


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<ARROW>-\[|\]->)
  | (?P<SYM>[(){},.:=*|/+?])
  | (?P<WORD>[A-Za-z_][A-Za-z0-9_]*|\d+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        if match.lastgroup != "WS":
            tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._position = 0

    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _take(self, expected: Optional[str] = None) -> str:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of query (expected {expected!r})")
        if expected is not None and token.upper() != expected.upper():
            raise ParseError(f"expected {expected!r}, found {token!r}")
        self._position += 1
        return token

    def _keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.upper() == word

    def parse(self) -> Query:
        self._take("MATCH")
        source = self._node()
        edge: Optional[EdgePattern] = None
        target: Optional[NodePattern] = None
        if self._peek() == "-[":
            edge = self._edge()
            target = self._node()
        predicates: List[Tuple[str, str, str]] = []
        if self._keyword("WHERE"):
            self._take("WHERE")
            predicates.append(self._predicate())
            while self._keyword("AND"):
                self._take("AND")
                predicates.append(self._predicate())
        self._take("RETURN")
        returns = [self._return_item()]
        while self._peek() == ",":
            self._take(",")
            returns.append(self._return_item())
        if self._peek() is not None:
            raise ParseError(f"trailing tokens: {self._tokens[self._position:]}")
        query = Query(source, edge, target, predicates, returns)
        self._validate(query)
        return query

    def _node(self) -> NodePattern:
        self._take("(")
        variable = self._identifier()
        node = NodePattern(variable)
        if self._peek() == "{":
            self._take("{")
            while True:
                key = self._identifier()
                self._take(":")
                if key == "id":
                    value = self._take()
                    if not value.isdigit():
                        raise ParseError(f"id must be an integer, found {value!r}")
                    node.node_id = int(value)
                else:
                    node.properties[key] = self._string()
                if self._peek() == ",":
                    self._take(",")
                    continue
                break
            self._take("}")
        self._take(")")
        return node

    def _edge(self) -> EdgePattern:
        self._take("-[")
        if self._peek() == "*":
            self._take("*")
            self._take("]->")
            return EdgePattern(None)
        self._take(":")
        parts: List[str] = []
        while self._peek() not in ("]->", None):
            parts.append(self._take())
        self._take("]->")
        expression = "".join(parts)
        if not expression:
            raise ParseError("empty path expression in edge pattern")
        return EdgePattern(expression)

    def _predicate(self) -> Tuple[str, str, str]:
        variable = self._identifier()
        self._take(".")
        property_id = self._identifier()
        self._take("=")
        return (variable, property_id, self._string())

    def _return_item(self) -> ReturnItem:
        variable = self._identifier()
        if self._peek() == ".":
            self._take(".")
            return ReturnItem(variable, self._identifier())
        return ReturnItem(variable)

    def _identifier(self) -> str:
        token = self._take()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            raise ParseError(f"expected identifier, found {token!r}")
        return token

    def _string(self) -> str:
        token = self._take()
        if not (token.startswith('"') and token.endswith('"')):
            raise ParseError(f"expected string literal, found {token!r}")
        return token[1:-1].replace('\\"', '"')

    def _validate(self, query: Query) -> None:
        known = set(query.variables())
        for variable, _, _ in query.predicates:
            if variable not in known:
                raise ParseError(f"WHERE references unknown variable {variable!r}")
        for item in query.returns:
            if item.variable not in known:
                raise ParseError(f"RETURN references unknown variable {item.variable!r}")
        if query.edge is not None and query.edge.path_expression is not None:
            from repro.workloads.rpq import compile_expression

            try:
                compile_expression(query.edge.path_expression)
            except ValueError as error:
                raise ParseError(f"bad path expression: {error}") from error


def parse_query(text: str) -> Query:
    """Parse a ZipQL query string."""
    return _Parser(text).parse()

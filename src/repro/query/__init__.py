"""ZipQL: a small Cypher-inspired query language over the ZipG API.

The paper's gMark path queries "can be easily mapped to their Cypher
representations" [13]; this package provides that surface for the
reproduction: a declarative ``MATCH ... WHERE ... RETURN`` language
whose planner compiles to the Table 1 primitives (``get_node_ids``,
``get_neighbor_ids``, ``get_edge_record``, the RPQ engine) so that
every query executes directly on the compressed store.

Supported grammar (see :mod:`repro.query.parser`)::

    MATCH (a {city: "Ithaca"})-[:0]->(b) WHERE b.interest = "Music" RETURN b
    MATCH (a {id: 5})-[:0|1]->(b) RETURN b.name
    MATCH (a)-[:0/1*]->(b) RETURN a, b          # label-regex paths
    MATCH (a {city: "Boston"}) RETURN a          # node-only match
"""

from repro.query.engine import QueryEngine, QueryResult
from repro.query.parser import ParseError, Query, parse_query

__all__ = ["ParseError", "Query", "QueryEngine", "QueryResult", "parse_query"]

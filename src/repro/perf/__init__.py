"""``repro.perf``: the memory-budgeted hot-set cache and request
coalescing layer (PR 5).

ZipG's pitch is serving interactive queries *from the compressed
representation* within a fixed memory budget (§2, §5). Repeated
TAO/LinkBench reads nevertheless re-run the same sampled-SA walks and
re-decode the same NodeFile/EdgeFile spans from scratch; this package
spends a small, strictly byte-accounted slice of the budget to make
those hot reads cheap without touching the memory-efficiency story:

* :class:`~repro.perf.cache.HotSetCache` -- a thread-safe segmented-LRU
  cache with a byte budget (:class:`~repro.perf.cache.CacheBudget`),
  per-entry byte accounting, and ``zipg_cache_*`` metrics published
  through :mod:`repro.obs`.
* :class:`~repro.perf.epoch.Epoch` -- the monotone counters every
  shard, the LogStore, and the store itself carry. Cache keys embed
  the epoch, so a mutation invalidates in O(1) (the stale generation
  simply becomes unreachable garbage the LRU evicts) -- never a key
  scan.
* :mod:`~repro.perf.coalesce` -- single-flight request sharing
  (:class:`~repro.perf.coalesce.SingleFlight`) and short-window batch
  coalescing (:class:`~repro.perf.coalesce.BatchCoalescer`) so
  concurrent identical queries execute once and concurrent extracts
  collapse into one batched-NPA kernel call.

See ``docs/CACHING.md`` for the budget model and wiring.
"""

from __future__ import annotations

from repro.perf.cache import (
    ENTRY_OVERHEAD_BYTES,
    CacheBudget,
    HotSetCache,
    estimate_size,
    new_cache_tag,
)
from repro.perf.coalesce import BatchCoalescer, SingleFlight
from repro.perf.epoch import Epoch

__all__ = [
    "BatchCoalescer",
    "CacheBudget",
    "ENTRY_OVERHEAD_BYTES",
    "Epoch",
    "HotSetCache",
    "SingleFlight",
    "estimate_size",
    "new_cache_tag",
]

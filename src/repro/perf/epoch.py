"""Monotone epoch counters: O(1) cache invalidation for mutable state.

Every mutable unit of the store (each shard's deletion bitmaps, the
LogStore, the store-level routing state) carries one :class:`Epoch`.
Cache keys embed the epoch value at read time, so bumping the epoch on
mutation makes every previously cached entry for that unit unreachable
in one increment -- the stale generation is never *scanned*, it is
garbage the byte-budgeted LRU evicts as new entries arrive.

The counter is deliberately tiny: a lock plus an int. Readers may call
:attr:`Epoch.value` without the lock (an int load is atomic under the
GIL); writers serialize through :meth:`bump` so two concurrent
mutations cannot collapse into one generation.
"""

from __future__ import annotations

import threading


class Epoch:
    """A thread-safe monotonically increasing generation counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self, start: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = int(start)

    @property
    def value(self) -> int:
        """The current generation (lock-free read)."""
        return self._value

    def bump(self) -> int:
        """Advance to the next generation; returns the new value."""
        with self._lock:
            self._value += 1
            return self._value

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Epoch({self._value})"

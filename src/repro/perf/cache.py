"""The memory-budgeted, segmented-LRU hot-set cache.

Design notes
------------

**Byte budget, not entry count.** ZipG's contract is a fixed memory
envelope (§2); an entry-count cap would let a handful of megabyte
adjacency lists blow through it. Every entry is charged its estimated
payload size (:func:`estimate_size`) plus a fixed
:data:`ENTRY_OVERHEAD_BYTES` for the key, the OrderedDict slot, and the
bookkeeping tuple. The invariant ``bytes <= budget.total_bytes`` holds
at every instant the lock is released.

**Segmented LRU.** Two LRU segments (the Secondary-Level Replacement
policy from the 1994 SLRU paper, as used by memcached and Caffeine):
new entries land in *probation*; a hit while on probation promotes the
entry to *protected*. One-touch scan traffic therefore washes through
probation without displacing the re-referenced hot set sitting in
protected. Protected is capped at ``protected_fraction`` of the budget;
overflow demotes protected-LRU entries back to probation's MRU end
rather than dropping them.

**Epoch-keyed invalidation.** The cache itself knows nothing about
invalidation. Callers embed a generation counter
(:class:`~repro.perf.epoch.Epoch`) in each key; a mutation bumps the
epoch, so stale generations simply stop being referenced and age out
under budget pressure. O(1) per mutation, no key scans, no TTLs.

**Single-flight loads.** :meth:`HotSetCache.get_or_load` guarantees at
most one loader runs per key at a time: concurrent misses on a hot key
block on the leader's :class:`threading.Event` instead of stampeding
the compressed store. Loaders run outside the cache lock.
"""

from __future__ import annotations

import itertools
import sys
import threading
import weakref
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.perf.coalesce import _Flight

# Charged per entry on top of the payload estimate: key tuple, two
# OrderedDict links, and the (value, nbytes) slot.
ENTRY_OVERHEAD_BYTES = 96

_MISS = object()

_tag_counter = itertools.count(1)


def new_cache_tag() -> int:
    """A process-unique id distinguishing cache-attached structures.

    Embedded in cache keys alongside the epoch so two structures (or
    one structure re-attached after reload) can never collide on keys.
    """
    return next(_tag_counter)


def estimate_size(value: object) -> int:
    """Estimate the resident payload size of ``value`` in bytes.

    Exact for the types the store actually caches (bytes, str, ints,
    numpy arrays, and flat containers of those); ``sys.getsizeof`` is
    the fallback for anything exotic. Container estimates recurse one
    level per element, which is enough for the dict-of-str property
    maps and list-of-int adjacency results on the hot paths.
    """
    if value is None:
        return 8
    if isinstance(value, (bytes, bytearray)):
        return len(value) + 48
    if isinstance(value, str):
        return len(value) + 56
    if isinstance(value, bool):
        return 28
    if isinstance(value, (int, float)):
        return 32
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 96
    if isinstance(value, dict):
        return 64 + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(estimate_size(item) for item in value)
    try:
        return int(sys.getsizeof(value))
    except TypeError:
        return 256


class CacheBudget:
    """A byte budget with a protected-segment cap.

    Args:
        total_bytes: hard ceiling on cached payload + per-entry
            overhead. Must be positive.
        protected_fraction: share of the budget the protected segment
            may occupy before demoting back to probation.
    """

    __slots__ = ("total_bytes", "protected_fraction")

    def __init__(
        self, total_bytes: int, protected_fraction: float = 0.8
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        self.total_bytes = int(total_bytes)
        self.protected_fraction = float(protected_fraction)

    @property
    def protected_bytes(self) -> int:
        """Byte cap for the protected segment."""
        return int(self.total_bytes * self.protected_fraction)

    def __repr__(self) -> str:
        return (
            f"CacheBudget(total_bytes={self.total_bytes}, "
            f"protected_fraction={self.protected_fraction})"
        )


class HotSetCache:
    """Thread-safe segmented-LRU cache under a byte budget.

    All segment and counter state is guarded by ``self._lock``; loader
    callables passed to :meth:`get_or_load` execute outside it.

    Args:
        budget: a :class:`CacheBudget` or a total byte count.
        name: label for the ``zipg_cache_*`` metrics this cache
            publishes through :mod:`repro.obs`.
    """

    def __init__(
        self, budget: Union[CacheBudget, int], name: str = "store"
    ) -> None:
        if isinstance(budget, int):
            budget = CacheBudget(budget)
        self.budget = budget
        self.name = name
        self._lock = threading.Lock()
        # key -> (value, nbytes); insertion order is LRU order
        # (oldest first), move_to_end on touch.
        self._probation: "OrderedDict[Hashable, Tuple[object, int]]"
        self._probation = OrderedDict()
        self._protected: "OrderedDict[Hashable, Tuple[object, int]]"
        self._protected = OrderedDict()
        self._flights: Dict[Hashable, _Flight] = {}
        self._bytes = 0
        self._protected_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._coalesced = 0
        _publish_cache_metrics(self)

    # -- reads ---------------------------------------------------------

    def get(self, key: Hashable) -> Tuple[bool, object]:
        """Look up ``key``; returns ``(hit, value)``.

        The two-tuple (rather than a sentinel return) lets callers
        cache ``None`` results -- negative caching matters for
        ``EdgeFile.find_record`` misses.
        """
        with self._lock:
            value = self._get_locked(key)
            if value is _MISS:
                self._misses += 1
                return False, None
            self._hits += 1
            return True, value

    def _get_locked(self, key: Hashable) -> object:
        entry = self._protected.get(key)
        if entry is not None:
            self._protected.move_to_end(key)
            return entry[0]
        entry = self._probation.pop(key, None)
        if entry is None:
            return _MISS
        # Second touch: promote to protected, demoting its LRU tail
        # back to probation if the segment overflows.
        self._protected[key] = entry
        self._protected_bytes += entry[1]
        cap = self.budget.protected_bytes
        while self._protected_bytes > cap and len(self._protected) > 1:
            demoted_key, demoted = self._protected.popitem(last=False)
            self._protected_bytes -= demoted[1]
            self._probation[demoted_key] = demoted
        return entry[0]

    # -- writes --------------------------------------------------------

    def put(
        self, key: Hashable, value: object, nbytes: Optional[int] = None
    ) -> bool:
        """Insert ``key`` -> ``value``; returns False if it cannot fit.

        Entries larger than the whole budget are rejected rather than
        flushing the cache to admit one oversized value.
        """
        if nbytes is None:
            nbytes = estimate_size(value)
        nbytes = int(nbytes) + ENTRY_OVERHEAD_BYTES
        if nbytes > self.budget.total_bytes:
            return False
        with self._lock:
            self._remove_locked(key)
            self._probation[key] = (value, nbytes)
            self._bytes += nbytes
            self._evict_locked()
            return True

    def _remove_locked(self, key: Hashable) -> None:
        entry = self._probation.pop(key, None)
        if entry is None:
            entry = self._protected.pop(key, None)
            if entry is not None:
                self._protected_bytes -= entry[1]
        if entry is not None:
            self._bytes -= entry[1]

    def _evict_locked(self) -> None:
        total = self.budget.total_bytes
        while self._bytes > total:
            if self._probation:
                _, entry = self._probation.popitem(last=False)
            elif self._protected:
                _, entry = self._protected.popitem(last=False)
                self._protected_bytes -= entry[1]
            else:  # pragma: no cover - bytes>0 implies an entry exists
                self._bytes = 0
                return
            self._bytes -= entry[1]
            self._evictions += 1

    def get_or_load(
        self,
        key: Hashable,
        loader: Callable[[], object],
        nbytes: Optional[int] = None,
    ) -> object:
        """Return the cached value, loading (once) on a miss.

        Concurrent callers missing on the same key share one loader
        execution: the first becomes the leader, the rest block on its
        completion and receive the same object. Loader exceptions --
        including :class:`BaseException` crash faults -- propagate to
        every waiter and cache nothing.
        """
        while True:
            with self._lock:
                value = self._get_locked(key)
                if value is not _MISS:
                    self._hits += 1
                    return value
                flight = self._flights.get(key)
                leader = flight is None
                if leader:
                    self._misses += 1
                    flight = _Flight()
                    self._flights[key] = flight
                else:
                    self._coalesced += 1
            if leader:
                break
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            value = loader()
            flight.value = value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Unpublish before waking waiters so post-completion
            # callers re-enter via the cache, not a dead flight.
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
        self.put(key, value, nbytes=nbytes)
        return value

    # -- management ----------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._probation.clear()
            self._protected.clear()
            self._bytes = 0
            self._protected_bytes = 0

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._probation) + len(self._protected)

    def stats(self) -> Dict[str, Union[int, float]]:
        """A point-in-time snapshot of the cache counters."""
        with self._lock:
            hits = self._hits
            misses = self._misses
            lookups = hits + misses
            return {
                "hits": hits,
                "misses": misses,
                "evictions": self._evictions,
                "coalesced_loads": self._coalesced,
                "bytes": self._bytes,
                "entries": len(self._probation) + len(self._protected),
                "budget_bytes": self.budget.total_bytes,
                "hit_ratio": (hits / lookups) if lookups else 0.0,
            }


def _publish_cache_metrics(cache: HotSetCache) -> None:
    """Register a weakref collector exporting ``zipg_cache_*`` counters.

    Same pattern as ``graph_store._publish_store_metrics``: the
    collector holds only a weak reference and unregisters itself (by
    returning ``None``) once the cache is garbage collected, so
    building many stores in tests does not leak collectors. Multiple
    live caches merge additively.
    """
    ref = weakref.ref(cache)

    def _collect() -> Optional[Dict[str, float]]:
        live = ref()
        if live is None:
            return None
        snap = live.stats()
        return {
            "zipg_cache_hits_total": float(snap["hits"]),
            "zipg_cache_misses_total": float(snap["misses"]),
            "zipg_cache_evictions_total": float(snap["evictions"]),
            "zipg_cache_bytes_total": float(snap["bytes"]),
            "zipg_cache_coalesced_loads_total": float(
                snap["coalesced_loads"]
            ),
        }

    obs.get_registry().register_collector(_collect)

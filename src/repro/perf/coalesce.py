"""Request coalescing: single-flight sharing and windowed batching.

Two primitives, both aimed at the same waste -- concurrent callers
doing identical or adjacent work on the compressed structures:

* :class:`SingleFlight` -- callers presenting the same key while a
  matching call is in flight wait for that call's outcome instead of
  re-executing it (the classic ``singleflight`` shape from serving
  stacks). The leader's exception propagates to every waiter;
  :class:`BaseException` (e.g. a simulated crash) included, so fault
  injection semantics survive coalescing.
* :class:`BatchCoalescer` -- requests arriving within a short window
  are collected and handed to one batch function (e.g. one
  ``extract_batch`` lockstep-NPA kernel call) whose results are routed
  back to the individual submitters. A zero window degrades to
  batch-of-one, so serial workloads pay nothing but one indirection.

Neither primitive holds its lock while user code runs: the leader
executes outside the lock and publishes through an :class:`Event`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Optional, Sequence


class _Flight:
    """One in-flight execution: waiters block on ``event``."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Deduplicate concurrent identical calls by key.

    The flight is removed from the table *before* its event is set, so
    a caller arriving after completion always starts a fresh execution
    -- results are shared only across genuinely concurrent callers,
    never cached across time (that is :class:`~repro.perf.cache
    .HotSetCache`'s job).

    Args:
        on_shared: optional callback invoked once per follower (a call
            absorbed by an in-flight leader) -- a metrics hook.
    """

    def __init__(self, on_shared: Optional[Callable[[], None]] = None) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}
        self._on_shared = on_shared
        self._shared = 0

    @property
    def shared(self) -> int:
        """Calls that joined an in-flight leader instead of executing."""
        return self._shared

    def do(self, key: Hashable, fn: Callable[[], object]) -> object:
        """Run ``fn()`` once per concurrent ``key``; share the outcome.

        Callers must treat a shared return value as read-only -- every
        follower receives the *same object* the leader produced.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                self._shared += 1
        if not leader:
            if self._on_shared is not None:
                self._on_shared()
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            value = fn()
            flight.value = value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Remove before waking waiters: late arrivals must not join
            # a finished flight.
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
        return value


class _Batch:
    """One open batch: the leader closes it and runs the batch call."""

    __slots__ = ("requests", "event", "results", "error", "closed")

    def __init__(self) -> None:
        self.requests: List[object] = []
        self.event = threading.Event()
        self.results: Optional[Sequence[object]] = None
        self.error: Optional[BaseException] = None
        self.closed = False


class BatchCoalescer:
    """Collapse requests arriving within ``window_s`` into one batch call.

    The first submitter of a batch becomes its *leader*: it waits out
    the window (``window_s == 0`` means no wait at all), closes the
    batch, and invokes ``batch_fn(requests)`` -- which must return one
    result per request, in order. Followers block until the leader
    publishes, then pick their own slot. A failed batch call raises the
    same exception in every participant.

    Args:
        batch_fn: the batched kernel call, ``requests -> results``.
        window_s: how long the leader lingers for companions. Keep this
            well under a query's latency target; 0 disables lingering.
        max_batch: requests per batch before a new one is opened.
    """

    def __init__(
        self,
        batch_fn: Callable[[List[object]], Sequence[object]],
        window_s: float = 0.0,
        max_batch: int = 256,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.batch_fn = batch_fn
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._lock = threading.Lock()
        self._open: Optional[_Batch] = None
        self._batches = 0
        self._coalesced = 0

    @property
    def batches(self) -> int:
        """Batch calls actually issued."""
        return self._batches

    @property
    def coalesced(self) -> int:
        """Requests that rode along in someone else's batch."""
        return self._coalesced

    def submit(self, request: object) -> object:
        """Submit one request; returns its result from the batch call."""
        with self._lock:
            batch = self._open
            if (
                batch is None
                or batch.closed
                or len(batch.requests) >= self.max_batch
            ):
                batch = _Batch()
                self._open = batch
                leader = True
            else:
                leader = False
            slot = len(batch.requests)
            batch.requests.append(request)
        if not leader:
            batch.event.wait()
            if batch.error is not None:
                raise batch.error
            assert batch.results is not None
            return batch.results[slot]
        if self.window_s > 0:
            time.sleep(self.window_s)
        with self._lock:
            batch.closed = True
            if self._open is batch:
                self._open = None
            requests = list(batch.requests)
            self._batches += 1
            self._coalesced += len(requests) - 1
        try:
            batch.results = self.batch_fn(requests)
        except BaseException as exc:
            batch.error = exc
            batch.event.set()
            raise
        batch.event.set()
        return batch.results[slot]

"""PropertyID delimiter assignment (§3.3, footnote 4).

Each PropertyID in the graph is assigned a unique non-printable
delimiter and a lexicographic *order*; serialized property lists write
each value prepended by its PropertyID's delimiter, in order. Graphs
with up to 24 PropertyIDs use one-byte delimiters; larger graphs (up to
576) switch uniformly to two-byte delimiters so parsing stays
unambiguous.

Reserved control bytes (never assigned as property delimiters):

====  =======================================
0x00  Succinct sentinel
0x01  EdgeFile record-begin (the paper's ``$``)
0x1B  EdgeFile source/type separator (``#``)
0x1C  EdgeFile metadata field separator (``,``)
0x1D  end-of-record (the paper's ``‡``)
0x1E  SuccinctKV record separator
====  =======================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import GraphFormatError, TooManyProperties

SENTINEL = 0x00
EDGE_RECORD_BEGIN = 0x01
EDGE_TYPE_SEPARATOR = 0x1B
EDGE_FIELD_SEPARATOR = 0x1C
END_OF_RECORD = 0x1D

#: EdgeRecord metadata fields between the record header and the
#: timestamp block: etype, count, twidth, dwidth, pwidth, base (§3.3,
#: Figure 2).  The writer and parser must agree on this count.
EDGE_METADATA_FIELDS = 6

_POOL = list(range(0x02, 0x1A))  # 24 single-byte delimiters
MAX_SINGLE_BYTE_PROPERTIES = len(_POOL)
MAX_PROPERTIES = len(_POOL) * len(_POOL)

# Property values may use any byte >= 0x20 (plus none of the above).
MIN_VALUE_BYTE = 0x20


def validate_property_value(value: str) -> bytes:
    """Encode a property value, rejecting reserved control bytes."""
    encoded = value.encode("utf-8")
    if any(byte < MIN_VALUE_BYTE for byte in encoded):
        raise GraphFormatError(
            f"property value {value!r} contains reserved control bytes"
        )
    return encoded


class DelimiterMap:
    """PropertyID -> (order, delimiter) map shared by a whole graph.

    The map is built once, from the full set of PropertyIDs occurring
    anywhere in the graph (nodes and edges), so that the same value
    serialization is searchable across every shard.
    """

    def __init__(self, property_ids: Iterable[str]) -> None:
        ordered = sorted(set(property_ids))
        if len(ordered) > MAX_PROPERTIES:
            raise TooManyProperties(
                f"{len(ordered)} PropertyIDs exceed the delimiter space "
                f"({MAX_PROPERTIES})"
            )
        self._ordered: List[str] = ordered
        self._two_byte = len(ordered) > MAX_SINGLE_BYTE_PROPERTIES
        self._delimiters: List[bytes] = []
        for index in range(len(ordered)):
            if self._two_byte:
                first, second = divmod(index, len(_POOL))
                self._delimiters.append(bytes([_POOL[first], _POOL[second]]))
            else:
                self._delimiters.append(bytes([_POOL[index]]))
        self._order: Dict[str, int] = {pid: i for i, pid in enumerate(ordered)}

    def __len__(self) -> int:
        return len(self._ordered)

    def __contains__(self, property_id: str) -> bool:
        return property_id in self._order

    @property
    def uses_two_byte_delimiters(self) -> bool:
        return self._two_byte

    @property
    def delimiter_width(self) -> int:
        return 2 if self._two_byte else 1

    def property_ids(self) -> List[str]:
        """All PropertyIDs in lexicographic (serialization) order."""
        return list(self._ordered)

    def order_of(self, property_id: str) -> int:
        """Lexicographic rank of ``property_id``."""
        try:
            return self._order[property_id]
        except KeyError:
            raise GraphFormatError(f"unknown PropertyID {property_id!r}") from None

    def delimiter_of(self, property_id: str) -> bytes:
        """Delimiter bytes assigned to ``property_id``."""
        return self._delimiters[self.order_of(property_id)]

    def next_delimiter_after(self, property_id: str) -> bytes:
        """Delimiter of the lexicographically next PropertyID, or the
        end-of-record delimiter for the last one (used to bracket
        exact-value search patterns, §3.4)."""
        order = self.order_of(property_id)
        if order + 1 < len(self._delimiters):
            return self._delimiters[order + 1]
        return bytes([END_OF_RECORD])

    # ------------------------------------------------------------------
    # Serialization of property lists
    # ------------------------------------------------------------------

    def serialize_values(self, properties: Dict[str, str]) -> Tuple[bytes, List[int]]:
        """Serialize ``properties`` to delimiter-prefixed values.

        Returns ``(payload, lengths)`` where ``payload`` is the byte
        string ``delim(p0) v0 delim(p1) v1 ...`` over *all* PropertyIDs
        in order (absent ones contribute a bare delimiter, as in Fig. 1)
        and ``lengths[k]`` is the encoded length of the k-th value.
        """
        unknown = set(properties) - set(self._order)
        if unknown:
            raise GraphFormatError(f"unknown PropertyIDs {sorted(unknown)!r}")
        payload = bytearray()
        lengths: List[int] = []
        for property_id, delimiter in zip(self._ordered, self._delimiters):
            payload.extend(delimiter)
            value = properties.get(property_id)
            if value is None:
                lengths.append(0)
            else:
                encoded = validate_property_value(value)
                payload.extend(encoded)
                lengths.append(len(encoded))
        return bytes(payload), lengths

    def serialize_sparse(self, properties: Dict[str, str]) -> bytes:
        """Serialize only the *present* properties (edge PropertyLists,
        §3.3: delimiter-separated values, boundaries marked by the
        delimiters themselves)."""
        payload = bytearray()
        for property_id in self._ordered:
            value = properties.get(property_id)
            if value is not None:
                payload.extend(self._delimiters[self._order[property_id]])
                payload.extend(validate_property_value(value))
        unknown = set(properties) - set(self._order)
        if unknown:
            raise GraphFormatError(f"unknown PropertyIDs {sorted(unknown)!r}")
        return bytes(payload)

    def parse_sparse(self, payload: bytes) -> Dict[str, str]:
        """Invert :meth:`serialize_sparse`."""
        width = self.delimiter_width
        result: Dict[str, str] = {}
        position = 0
        current: Optional[str] = None
        value_start = 0
        while position < len(payload):
            if payload[position] < MIN_VALUE_BYTE:
                if current is not None:
                    result[current] = payload[value_start:position].decode("utf-8")
                delimiter = bytes(payload[position : position + width])
                current = self._property_for_delimiter(delimiter)
                position += width
                value_start = position
            else:
                position += 1
        if current is not None:
            result[current] = payload[value_start:position].decode("utf-8")
        return result

    def _property_for_delimiter(self, delimiter: bytes) -> str:
        if self._two_byte:
            index = _POOL.index(delimiter[0]) * len(_POOL) + _POOL.index(delimiter[1])
        else:
            index = _POOL.index(delimiter[0])
        if index >= len(self._ordered):
            raise GraphFormatError(f"unassigned delimiter {delimiter!r}")
        return self._ordered[index]

    def serialized_size_bytes(self) -> int:
        """Footprint of the PropertyID -> (order, delimiter) map itself."""
        return sum(len(pid) + 1 + self.delimiter_width for pid in self._ordered)

"""A compressed shard: NodeFile + EdgeFile + deletion bitmaps.

Shards are the unit of compression and placement (§4.1): the initial
graph is hash-partitioned into per-core shards, and every LogStore
freeze produces one more. A shard's compressed files are immutable;
only its deletion bitmaps mutate.
"""

from __future__ import annotations

# zipg: hot-path
# zipg: cache-backed

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.core.deletes import DeletionIndex
from repro.core.delimiters import DelimiterMap
from repro.core.edgefile import EdgeFile, EdgeRecordFragment
from repro.core.model import Edge, EdgeData, PropertyList
from repro.perf.epoch import Epoch
from repro.succinct.stats import AccessStats

if TYPE_CHECKING:
    from repro.perf.cache import HotSetCache


class ShardEdgeFragment:
    """An EdgeRecord fragment in a compressed shard, with the shard's
    edge deletion bitmap applied on access."""

    def __init__(
        self, shard: "CompressedShard", fragment: EdgeRecordFragment
    ) -> None:
        self._shard = shard
        self._fragment = fragment
        self.source = fragment.source
        self.edge_type = fragment.edge_type

    @property
    def edge_count(self) -> int:
        return self._fragment.edge_count

    def timestamp_at(self, time_order: int) -> int:
        return self._fragment.timestamp_at(time_order)

    def destination_at(self, time_order: int) -> int:
        return self._fragment.destination_at(time_order)

    def properties_at(self, time_order: int) -> PropertyList:
        return self._fragment.properties_at(time_order)

    def edge_data_at(self, time_order: int, with_properties: bool = True) -> EdgeData:
        return self._fragment.edge_data_at(time_order, with_properties)

    def time_range(self, t_low: Optional[int], t_high: Optional[int]) -> Tuple[int, int]:
        return self._fragment.time_range(t_low, t_high)

    def all_destinations(self) -> List[int]:
        return self._fragment.all_destinations()

    def all_timestamps(self) -> List[int]:
        return self._fragment.all_timestamps()

    def deleted(self, time_order: int) -> bool:
        return self._shard.deletions.edge_deleted(
            self._fragment.base_edge_index + time_order
        )

    def deleted_count(self) -> int:
        base = self._fragment.base_edge_index
        return sum(
            1
            for i in range(self._fragment.edge_count)
            if self._shard.deletions.edge_deleted(base + i)
        )

    def mark_deleted(self, time_order: int) -> None:
        self._shard.deletions.delete_edge(self._fragment.base_edge_index + time_order)
        self._shard.epoch.bump()


class CompressedShard:
    """One immutable compressed shard plus its mutable deletion bitmaps.

    Args:
        shard_id: position in the store's shard list.
        nodes: NodeID -> PropertyList owned by this shard.
        edges: (source, edge_type) -> edges owned by this shard.
        delimiters: graph-wide delimiter map.
        alpha: Succinct sampling rate.
        stats: optional shared access meter (one per simulated server).
        encoding: flat-file codec tag for both files (see
            :mod:`repro.succinct.encodings`).
    """

    def __init__(
        self,
        shard_id: int,
        nodes: Dict[int, PropertyList],
        edges: Dict[Tuple[int, int], Iterable[Edge]],
        delimiters: DelimiterMap,
        alpha: int = 32,
        stats: Optional[AccessStats] = None,
        encoding: str = "succinct",
    ) -> None:
        from repro.core.nodefile import NodeFile  # local import: avoid cycle at module load

        self.shard_id = shard_id
        self.stats = stats if stats is not None else AccessStats()
        self.node_file = NodeFile(
            nodes, delimiters, alpha=alpha, stats=self.stats, encoding=encoding
        )
        self.edge_file = EdgeFile(
            edges, delimiters, alpha=alpha, stats=self.stats, encoding=encoding
        )
        self.deletions = DeletionIndex(len(self.node_file), self.edge_file.num_edges)
        # Generation counter covering this shard's only mutable state
        # (the deletion bitmaps); cache keys embed it.
        self.epoch = Epoch()

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def has_node(self, node_id: int) -> bool:
        return node_id in self.node_file

    def node_live(self, node_id: int) -> bool:
        if node_id not in self.node_file:
            return False
        return not self.deletions.node_deleted(self.node_file.node_index(node_id))

    def get_properties(
        self, node_id: int, property_ids: Optional[List[str]] = None
    ) -> PropertyList:
        return self.node_file.get_properties(node_id, property_ids)

    def get_property(self, node_id: int, property_id: str) -> Optional[str]:
        return self.node_file.get_property(node_id, property_id)

    def find_live_nodes(self, properties: PropertyList) -> List[int]:
        """Search, filtered through the node deletion bitmap."""
        with obs.span("shard.find_live_nodes", layer="shard", shard=self.shard_id):
            return [
                node_id
                for node_id in self.node_file.find_nodes(properties)
                if not self.deletions.node_deleted(self.node_file.node_index(node_id))
            ]

    def delete_node(self, node_id: int) -> bool:
        """Lazily delete; returns whether the node was live here."""
        if not self.node_live(node_id):
            return False
        self.deletions.delete_node(self.node_file.node_index(node_id))
        self.stats.writes += 1
        self.epoch.bump()
        return True

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def edge_fragment(self, source: int, edge_type: int) -> Optional[ShardEdgeFragment]:
        fragment = self.edge_file.find_record(source, edge_type)
        if fragment is None:
            return None
        return ShardEdgeFragment(self, fragment)

    def edge_fragments(self, source: int) -> List[ShardEdgeFragment]:
        return [
            ShardEdgeFragment(self, fragment)
            for fragment in self.edge_file.find_records(source)
        ]

    def fragments_of_type(self, edge_type: int) -> List[ShardEdgeFragment]:
        return [
            ShardEdgeFragment(self, fragment)
            for fragment in self.edge_file.records_of_type(edge_type)
        ]

    # zipg: scalar-ok  (one decode per verified search hit)
    def find_edges_by_property(
        self, property_id: str, value: str
    ) -> List[Tuple[int, int, EdgeData]]:
        """Live edges whose PropertyList matches (edge-property search,
        the §3.3 extension). Returns (source, edge_type, EdgeData)."""
        with obs.span(
            "shard.find_edges_by_property", layer="shard", shard=self.shard_id
        ):
            results = []
            for fragment, time_order in self.edge_file.find_edges_by_property(
                property_id, value
            ):
                if self.deletions.edge_deleted(fragment.base_edge_index + time_order):
                    continue
                results.append(
                    (fragment.source, fragment.edge_type,
                     fragment.edge_data_at(time_order))
                )
            return results

    def delete_edges(self, source: int, edge_type: int, destination: int) -> int:
        """Mark all live (source, edge_type, destination) edges deleted."""
        fragment = self.edge_fragment(source, edge_type)
        if fragment is None:
            return 0
        deleted = 0
        for index, candidate in enumerate(fragment.all_destinations()):
            if candidate == destination and not fragment.deleted(index):
                fragment.mark_deleted(index)
                deleted += 1
        if deleted:
            self.stats.writes += 1
            self.epoch.bump()
        return deleted

    # ------------------------------------------------------------------
    # Binary serialization (§4.1)
    # ------------------------------------------------------------------

    def sections(self) -> dict:
        """Write-side sections: compressed files (nested section dicts)
        plus deletion bitmaps, all as zero-copy chunks suitable for
        :func:`repro.succinct.serialize.write_sections`."""
        from repro.succinct.serialize import array_chunks, pack_ints

        return {
            "meta": pack_ints(self.shard_id, len(self.node_file),
                              self.edge_file.num_edges),
            "node_file": self.node_file.sections(),
            "edge_file": self.edge_file.sections(),
            "deleted_nodes": array_chunks(
                self.deletions._nodes.blocks_for_write()
            ),
            "deleted_edges": array_chunks(
                self.deletions._edges.blocks_for_write()
            ),
        }

    def to_bytes(self) -> bytes:
        """Serialize the shard to one owned blob."""
        from repro.succinct.serialize import pack_sections

        return pack_sections(self.sections())

    @classmethod
    def from_bytes(cls, blob: bytes, delimiters: DelimiterMap,
                   stats: Optional[AccessStats] = None) -> "CompressedShard":
        """Reconstruct a shard serialized with :meth:`to_bytes` -- no
        recompression, matching the paper's load-serialized-files model.

        ``blob`` may be any buffer (bytes or an ``mmap``): the
        compressed files become zero-copy views over it, so the caller
        must keep the buffer alive for the shard's lifetime. Only the
        deletion bitmaps are copied -- they are this shard's one piece
        of mutable state, and an ``ACCESS_READ`` map could not back
        them."""
        from repro.core.nodefile import NodeFile
        from repro.succinct.bitvector import BitVector
        from repro.succinct.serialize import unpack_array, unpack_ints, unpack_sections

        sections = unpack_sections(blob)
        shard_id, num_nodes, num_edges = unpack_ints(sections["meta"])
        instance = cls.__new__(cls)
        instance.shard_id = shard_id
        instance.stats = stats if stats is not None else AccessStats()
        instance.node_file = NodeFile.from_bytes(
            sections["node_file"], delimiters, stats=instance.stats
        )
        instance.edge_file = EdgeFile.from_bytes(
            sections["edge_file"], delimiters, stats=instance.stats
        )
        instance.deletions = DeletionIndex(num_nodes, num_edges)
        instance.deletions._nodes = BitVector.from_blocks(
            num_nodes, unpack_array(sections["deleted_nodes"])
        )
        instance.deletions._edges = BitVector.from_blocks(
            num_edges, unpack_array(sections["deleted_edges"])
        )
        instance.epoch = Epoch()
        return instance

    # ------------------------------------------------------------------
    # Hot-set cache (repro.perf)
    # ------------------------------------------------------------------

    def _epoch_value(self) -> int:
        return self.epoch.value

    def attach_cache(
        self, cache: "HotSetCache", coalesce_window_s: float = 0.0
    ) -> None:
        """Front this shard's compressed files with ``cache``.

        Cache keys embed :attr:`epoch`, so deletions on this shard
        invalidate every cached read in O(1).
        """
        self.node_file.attach_cache(
            cache, epoch_of=self._epoch_value,
            coalesce_window_s=coalesce_window_s,
        )
        self.edge_file.attach_cache(
            cache, epoch_of=self._epoch_value,
            coalesce_window_s=coalesce_window_s,
        )

    def detach_cache(self) -> None:
        self.node_file.detach_cache()
        self.edge_file.detach_cache()

    # ------------------------------------------------------------------
    # Garbage-collection support
    # ------------------------------------------------------------------

    def live_contents(self) -> Tuple[Dict[int, PropertyList], Dict[Tuple[int, int], List[Edge]]]:
        """The shard's live (non-deleted) data, decoded from the
        compressed files -- the input to periodic garbage collection
        (§4.1) and to persistence."""
        nodes: Dict[int, PropertyList] = {}
        for node_id in self.node_file.node_ids().tolist():
            if self.node_live(node_id):
                nodes[node_id] = self.node_file.get_properties(node_id)
        edges: Dict[Tuple[int, int], List[Edge]] = {}
        for offset in self.edge_file._record_offsets.tolist():
            fragment = self.edge_file._parse_record_at(int(offset))
            # One sequential extract per column instead of per-edge
            # random accesses (the batched decode path).
            destinations = fragment.all_destinations()
            timestamps = fragment.all_timestamps()
            properties = fragment.all_properties()
            live: List[Edge] = []
            for order in range(fragment.edge_count):
                if self.deletions.edge_deleted(fragment.base_edge_index + order):
                    continue
                live.append(Edge(
                    fragment.source,
                    destinations[order],
                    fragment.edge_type,
                    timestamps[order],
                    properties[order],
                ))
            if live:
                edges[(fragment.source, fragment.edge_type)] = live
        return nodes, edges

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    def original_size_bytes(self) -> int:
        return self.node_file.original_size_bytes() + self.edge_file.original_size_bytes()

    def serialized_size_bytes(self) -> int:
        return (
            self.node_file.serialized_size_bytes()
            + self.edge_file.serialized_size_bytes()
            + self.deletions.serialized_size_bytes()
        )

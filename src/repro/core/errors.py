"""Exception hierarchy for the ZipG store."""


class ZipGError(Exception):
    """Base class for all ZipG errors."""


class GraphFormatError(ZipGError):
    """Input graph data violates a layout constraint (e.g. property
    values containing reserved control bytes)."""


class NodeNotFound(ZipGError, KeyError):
    """The queried NodeID does not exist (or has been deleted)."""


class EdgeRecordNotFound(ZipGError, KeyError):
    """No live EdgeRecord exists for the queried (NodeID, EdgeType)."""


class TooManyProperties(GraphFormatError):
    """The graph declares more distinct PropertyIDs than the delimiter
    space supports (625 with two-byte delimiters, §3.3 footnote 4)."""

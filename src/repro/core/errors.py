"""Exception hierarchy for the ZipG store."""

from __future__ import annotations

from typing import List, Tuple


class ZipGError(Exception):
    """Base class for all ZipG errors."""


class GraphFormatError(ZipGError):
    """Input graph data violates a layout constraint (e.g. property
    values containing reserved control bytes)."""


class NodeNotFound(ZipGError, KeyError):
    """The queried NodeID does not exist (or has been deleted)."""


class EdgeRecordNotFound(ZipGError, KeyError):
    """No live EdgeRecord exists for the queried (NodeID, EdgeType)."""


class TooManyProperties(GraphFormatError):
    """The graph declares more distinct PropertyIDs than the delimiter
    space supports (625 with two-byte delimiters, §3.3 footnote 4)."""


# ----------------------------------------------------------------------
# Durability / recovery (§4.1 persistence + WAL)
# ----------------------------------------------------------------------


class RecoveryError(ZipGError):
    """A persisted store layout cannot be recovered as-is.

    Raised by :mod:`repro.core.persistence` when the on-disk state is
    torn, incomplete, or version-incompatible.  Subclasses identify the
    exact failure so operators (and tests) can distinguish "retry after
    fixing the path" from "the snapshot is gone"."""


class ManifestMissingError(RecoveryError):
    """No committed manifest exists under the store root."""


class ManifestCorruptError(RecoveryError):
    """The manifest exists but cannot be parsed or fails validation."""


class SnapshotCorruptError(RecoveryError):
    """A data file referenced by the manifest is missing, truncated,
    or fails its checksum (a torn or partial snapshot)."""


class UnsupportedVersionError(RecoveryError, ValueError):
    """The manifest's format version is not loadable by this build.

    Also a :class:`ValueError` for backward compatibility with callers
    that predate the typed recovery hierarchy."""


class FragmentCorruptError(RecoveryError):
    """An erasure-coded fragment is missing, truncated, or fails its
    manifest CRC.  Reconstruction treats the fragment as an erasure
    and decodes from the survivors; only the *loss of too many
    fragments* escalates to :class:`ReconstructionFailed`."""


class ReconstructionFailed(RecoveryError):
    """An erasure-coded snapshot file could not be reconstructed:
    fewer than ``k`` verified fragments were reachable, or the decoded
    payload failed the whole-file CRC.  Degraded reads surface this
    through the shard-error path (the data is temporarily gone, not
    silently wrong)."""


class StoreVersionConflictError(RecoveryError):
    """Refusing to overwrite a store root whose manifest was written by
    a *newer* format version -- saving would produce a mixed-version
    directory that neither build could recover."""


# ----------------------------------------------------------------------
# Fan-out / replication failure paths
# ----------------------------------------------------------------------


class ShardCallError(ZipGError):
    """A per-shard work item raised while fanning out a query."""


class DeadlineExceeded(ShardCallError):
    """A shard call exceeded its per-call deadline.

    Deadlines are enforced cooperatively: the call runs to completion
    but its result is discarded and the call is treated as failed
    (retryable) once the elapsed wall time passes the deadline."""


class TransportError(ShardCallError):
    """An RPC to a shard server failed at the transport layer.

    Covers connection refusal, resets mid-call, torn or oversized
    frames, and socket timeouts.  Deliberately an :class:`Exception`
    (not a crash): the executor's retry loop and the replicated
    cluster's failover treat it as one failed, retryable attempt."""


class GatewayError(ZipGError):
    """Base class for failures originating in the query gateway's
    admission/dispatch machinery (not in the store behind it)."""


class RetryAfter(GatewayError):
    """The gateway shed this request; retry after ``retry_after_s``.

    Raised (and wire-encoded, carrying the hint) when admission
    control rejects a request -- the tenant's queue is full or its
    token bucket is empty.  This is *structured* load shedding: the
    client knows the request never executed and knows when capacity is
    expected back, so open-loop drivers can implement honest retry
    schedules instead of hammering an overloaded front door."""

    def __init__(self, message: str = "", retry_after_s: float = 0.0,
                 reason: str = "overload") -> None:
        #: Seconds the client should wait before retrying.
        self.retry_after_s = float(retry_after_s)
        #: Shed cause: ``"queue_full"``, ``"rate_limit"``, ...
        self.reason = reason
        super().__init__(
            message or f"request shed ({reason}); "
                       f"retry after {self.retry_after_s:.3f}s"
        )


class GatewayClosed(GatewayError):
    """The gateway is draining for shutdown and admits nothing new.

    Requests admitted before the drain began still complete; this is
    only ever raised at the admission edge, never mid-flight."""


class RemoteError(ZipGError):
    """An exception raised on a remote server whose type has no local
    reconstruction.  Carries the remote type name and message."""

    def __init__(self, remote_type: str, message: str) -> None:
        self.remote_type = remote_type
        super().__init__(f"{remote_type}: {message}")


class ReplicaCallError(ZipGError):
    """Every live replica of a shard failed the attempted call.

    Carries the per-replica failure trail so degraded-query modes can
    surface structured errors instead of a bare traceback."""

    def __init__(self, shard_id: int, attempts: List[Tuple[int, BaseException]]) -> None:
        self.shard_id = shard_id
        #: ``(server_id, exception)`` pairs in the order tried.
        self.attempts = list(attempts)
        tried = ", ".join(
            f"server {server}: {type(exc).__name__}" for server, exc in self.attempts
        )
        super().__init__(
            f"all {len(self.attempts)} live replica call(s) for shard "
            f"{shard_id} failed ({tried})"
        )

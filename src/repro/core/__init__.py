"""ZipG core: the paper's primary contribution.

* :mod:`repro.core.model` -- property-graph data model (§2.1) and the
  API value types (EdgeRecord / EdgeData / TimeOrder, §2.2).
* :mod:`repro.core.delimiters` -- per-propertyID delimiter assignment
  (§3.3, footnote 4).
* :mod:`repro.core.nodefile` / :mod:`repro.core.edgefile` -- the two
  flat-file layouts compressed with Succinct (§3.3, Figures 1 and 2).
* :mod:`repro.core.shard` -- one compressed shard (NodeFile + EdgeFile
  + deletion bitmaps).
* :mod:`repro.core.logstore` -- the single query-optimized LogStore
  (§3.5).
* :mod:`repro.core.pointers` -- fanned-update pointers (§3.5, Fig. 3).
* :mod:`repro.core.graph_store` -- the ZipG store implementing the
  Table 1 API on top of all of the above.
"""

from repro.core.errors import (
    DeadlineExceeded,
    EdgeRecordNotFound,
    GraphFormatError,
    ManifestCorruptError,
    ManifestMissingError,
    NodeNotFound,
    RecoveryError,
    ReplicaCallError,
    ShardCallError,
    SnapshotCorruptError,
    StoreVersionConflictError,
    UnsupportedVersionError,
    ZipGError,
)
from repro.core.executor import ShardExecutor, ShardResult
from repro.core.graph_store import ZipG
from repro.core.wal import WalConfig, WalRecord, WriteAheadLog
from repro.core.model import (
    WILDCARD,
    Edge,
    EdgeData,
    GraphData,
    PropertyList,
)

__all__ = [
    "DeadlineExceeded",
    "Edge",
    "EdgeData",
    "EdgeRecordNotFound",
    "GraphData",
    "GraphFormatError",
    "ManifestCorruptError",
    "ManifestMissingError",
    "NodeNotFound",
    "PropertyList",
    "RecoveryError",
    "ReplicaCallError",
    "ShardCallError",
    "ShardExecutor",
    "ShardResult",
    "SnapshotCorruptError",
    "StoreVersionConflictError",
    "UnsupportedVersionError",
    "WILDCARD",
    "WalConfig",
    "WalRecord",
    "WriteAheadLog",
    "ZipG",
    "ZipGError",
]

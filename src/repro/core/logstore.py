"""The single system-wide LogStore (§3.5).

All writes are directed to one *query-optimized* (rather than
memory-optimized) LogStore. Once its size crosses a threshold it is
compressed into a new immutable shard and a fresh LogStore is
instantiated. Being query-optimized means it keeps uncompressed dicts
plus an inverted index over property values, so reads against fresh
data are cheap; the price is a larger per-byte footprint, which is why
there is exactly one of these in the system.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

# zipg: cache-backed

from repro import obs
from repro.core.model import Edge, EdgeData, PropertyList
from repro.perf.epoch import Epoch
from repro.succinct.stats import AccessStats


class LogEdgeFragment:
    """Uniform edge-fragment view over the LogStore's edge lists.

    Mirrors :class:`repro.core.edgefile.EdgeRecordFragment`'s accessor
    API so the merged EdgeRecord can treat compressed and log fragments
    identically.
    """

    def __init__(
        self, store: "LogStore", source: int, edge_type: int, edges: List[Edge]
    ) -> None:
        self._store = store
        self.source = source
        self.edge_type = edge_type
        self._edges = edges

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def timestamp_at(self, time_order: int) -> int:
        self._store.stats.random_accesses += 1
        return self._edges[time_order].timestamp

    def destination_at(self, time_order: int) -> int:
        self._store.stats.random_accesses += 1
        return self._edges[time_order].destination

    def properties_at(self, time_order: int) -> PropertyList:
        self._store.stats.random_accesses += 1
        return dict(self._edges[time_order].properties)

    def edge_data_at(self, time_order: int, with_properties: bool = True) -> EdgeData:
        edge = self._edges[time_order]
        self._store.stats.random_accesses += 1
        return EdgeData(
            destination=edge.destination,
            timestamp=edge.timestamp,
            properties=dict(edge.properties) if with_properties else {},
        )

    def time_range(self, t_low: Optional[int], t_high: Optional[int]) -> Tuple[int, int]:
        timestamps = [edge.timestamp for edge in self._edges]
        begin = 0 if t_low is None else bisect.bisect_left(timestamps, t_low)
        end = len(timestamps) if t_high is None else bisect.bisect_left(timestamps, t_high)
        self._store.stats.random_accesses += 2
        return (begin, end)

    def all_destinations(self) -> List[int]:
        self._store.stats.random_accesses += 1
        self._store.stats.sequential_bytes += 8 * len(self._edges)
        return [edge.destination for edge in self._edges]

    def all_timestamps(self) -> List[int]:
        self._store.stats.random_accesses += 1
        self._store.stats.sequential_bytes += 8 * len(self._edges)
        return [edge.timestamp for edge in self._edges]

    def deleted(self, time_order: int) -> bool:
        # LogStore deletes are physical (the store is mutable), so a
        # present edge is by definition live.
        return False

    def deleted_count(self) -> int:
        return 0


class LogStore:
    """Query-optimized uncompressed store for fresh writes.

    Maintains node PropertyLists, timestamp-sorted edge lists per
    (source, EdgeType), and an inverted index over (PropertyID, value)
    for ``get_node_ids``. Node deletes tombstone (appends revive); edge
    deletes are physical -- this store is the mutable one.
    """

    def __init__(self, stats: Optional[AccessStats] = None) -> None:
        self.stats = stats if stats is not None else AccessStats()
        self._nodes: Dict[int, PropertyList] = {}
        self._edges: Dict[Tuple[int, int], List[Edge]] = {}
        self._value_index: Dict[Tuple[str, str], Set[int]] = {}
        self._node_tombstones: Set[int] = set()
        self._size_bytes = 0
        # Every write bumps this; cache keys embed it so fresh-data
        # reads are never served stale from the hot-set cache.
        self.epoch = Epoch()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append_node(self, node_id: int, properties: PropertyList) -> None:
        """Append a node (or a fresh version of one) with its properties."""
        self.stats.writes += 1
        self.epoch.bump()
        previous = self._nodes.get(node_id)
        if previous is not None:
            for key, value in previous.items():
                self._value_index.get((key, value), set()).discard(node_id)
            # A tombstoned previous version was already subtracted from
            # the size accounting when it was deleted.
            if node_id not in self._node_tombstones:
                self._size_bytes -= self._node_size(node_id, previous)
        self._nodes[node_id] = dict(properties)
        self._node_tombstones.discard(node_id)
        for key, value in properties.items():
            self._value_index.setdefault((key, value), set()).add(node_id)
        self._size_bytes += self._node_size(node_id, properties)

    def append_edge(self, edge: Edge) -> None:
        """Append one edge, keeping the record sorted by timestamp."""
        self.stats.writes += 1
        self.epoch.bump()
        bucket = self._edges.setdefault((edge.source, edge.edge_type), [])
        keys = [(e.timestamp, e.destination) for e in bucket]
        bucket.insert(bisect.bisect_right(keys, (edge.timestamp, edge.destination)), edge)
        self._size_bytes += self._edge_size(edge)

    def delete_node(self, node_id: int) -> bool:
        """Tombstone a node held here; returns whether it was present.

        The dead payload no longer counts toward the freeze threshold or
        the footprint; :meth:`append_node` re-adds it on revive.
        """
        self.stats.writes += 1
        self.epoch.bump()
        if node_id in self._nodes and node_id not in self._node_tombstones:
            self._node_tombstones.add(node_id)
            self._size_bytes -= self._node_size(node_id, self._nodes[node_id])
            return True
        return False

    def delete_edges(self, source: int, edge_type: int, destination: int) -> int:
        """Remove matching edges held here. The LogStore is the one
        *mutable* store in the system, so deletion is physical --
        tombstoning by (source, type, destination) would wrongly revive
        older duplicates when the same edge is later re-appended."""
        self.stats.writes += 1
        self.epoch.bump()
        bucket = self._edges.get((source, edge_type), [])
        remaining = [edge for edge in bucket if edge.destination != destination]
        matching = len(bucket) - len(remaining)
        if matching:
            for edge in bucket:
                if edge.destination == destination:
                    self._size_bytes -= self._edge_size(edge)
            if remaining:
                self._edges[(source, edge_type)] = remaining
            else:
                del self._edges[(source, edge_type)]
        return matching

    # ------------------------------------------------------------------
    # Reads (mirroring the shard interface)
    # ------------------------------------------------------------------

    def has_node(self, node_id: int) -> bool:
        self.stats.random_accesses += 1
        return node_id in self._nodes

    def has_edge_bucket(self, source: int, edge_type: int) -> bool:
        """Whether any (source, edge_type) edges are physically present
        (routing-metadata probe; not metered as a storage touch)."""
        return bool(self._edges.get((source, edge_type)))

    def node_live(self, node_id: int) -> bool:
        return node_id in self._nodes and node_id not in self._node_tombstones

    @obs.traced("logstore.get_properties", layer="logstore")
    def get_properties(
        self, node_id: int, property_ids: Optional[List[str]] = None
    ) -> PropertyList:
        self.stats.random_accesses += 1
        properties = self._nodes[node_id]
        if property_ids is None:
            return dict(properties)
        return {pid: properties[pid] for pid in property_ids if pid in properties}

    def get_property(self, node_id: int, property_id: str) -> Optional[str]:
        self.stats.random_accesses += 1
        return self._nodes[node_id].get(property_id)

    @obs.traced("logstore.find_live_nodes", layer="logstore")
    def find_live_nodes(self, properties: PropertyList) -> List[int]:
        """NodeIDs matching all pairs, via the inverted index."""
        self.stats.searches += 1
        if not properties:
            return sorted(n for n in self._nodes if n not in self._node_tombstones)
        result: Optional[Set[int]] = None
        for pair in properties.items():
            matches = self._value_index.get(pair, set())
            result = set(matches) if result is None else result & matches
            if not result:
                return []
        return sorted(n for n in result if n not in self._node_tombstones)

    def edge_fragment(self, source: int, edge_type: int) -> Optional[LogEdgeFragment]:
        self.stats.random_accesses += 1
        bucket = self._edges.get((source, edge_type))
        if not bucket:
            return None
        return LogEdgeFragment(self, source, edge_type, bucket)

    def edge_fragments(self, source: int) -> List[LogEdgeFragment]:
        self.stats.random_accesses += 1
        return [
            LogEdgeFragment(self, source, edge_type, bucket)
            for (src, edge_type), bucket in sorted(self._edges.items())
            if src == source and bucket
        ]

    @obs.traced("logstore.find_edges_by_property", layer="logstore")
    def find_edges_by_property(
        self, property_id: str, value: str
    ) -> List[Tuple[int, int, EdgeData]]:
        """Live edges whose PropertyList matches; (source, edge_type,
        EdgeData) triples, mirroring the compressed shards' API."""
        self.stats.searches += 1
        results = []
        for (source, edge_type), bucket in sorted(self._edges.items()):
            for edge in bucket:
                if edge.properties.get(property_id) == value:
                    results.append((
                        source, edge_type,
                        EdgeData(edge.destination, edge.timestamp, dict(edge.properties)),
                    ))
        return results

    def fragments_of_type(self, edge_type: int) -> List[LogEdgeFragment]:
        self.stats.searches += 1
        return [
            LogEdgeFragment(self, src, etype, bucket)
            for (src, etype), bucket in sorted(self._edges.items())
            if etype == edge_type and bucket
        ]

    # ------------------------------------------------------------------
    # Freeze support
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._nodes and not self._edges

    def live_contents(self) -> Tuple[Dict[int, PropertyList], Dict[Tuple[int, int], List[Edge]]]:
        """Live (non-tombstoned) contents, for compression into a shard.

        Tombstoned data is compacted away: deletes of data living in
        *other* shards were applied to those shards' bitmaps directly.
        """
        nodes = {
            node_id: dict(properties)
            for node_id, properties in self._nodes.items()
            if node_id not in self._node_tombstones
        }
        edges: Dict[Tuple[int, int], List[Edge]] = {
            key: list(bucket) for key, bucket in self._edges.items() if bucket
        }
        return nodes, edges

    # ------------------------------------------------------------------
    # Persistence payloads (used by repro.core.persistence)
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the full LogStore contents
        (including tombstones, which must survive a save/load cycle)."""
        return {
            "nodes": {str(k): v for k, v in self._nodes.items()},
            "edges": {
                f"{src}:{etype}": [
                    [e.source, e.destination, e.edge_type, e.timestamp, e.properties]
                    for e in bucket
                ]
                for (src, etype), bucket in self._edges.items()
            },
            "node_tombstones": sorted(self._node_tombstones),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LogStore":
        """Rebuild a LogStore from :meth:`to_payload` output.

        Contents are replayed through the write API so the inverted
        index and freeze-threshold size accounting come out exactly as
        they were pre-save (tombstoned payload excluded)."""
        log = cls()
        nodes = payload["nodes"]
        assert isinstance(nodes, dict)
        for node_id, properties in nodes.items():
            log.append_node(int(node_id), dict(properties))
        edges = payload["edges"]
        assert isinstance(edges, dict)
        for rows in edges.values():
            for row in rows:
                source, destination, edge_type, timestamp, properties = row
                log.append_edge(
                    Edge(source, destination, edge_type, timestamp, dict(properties))
                )
        tombstones = payload["node_tombstones"]
        assert isinstance(tombstones, list)
        for node_id in tombstones:
            log.delete_node(int(node_id))
        log.stats.reset()
        return log

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    @staticmethod
    def _node_size(node_id: int, properties: PropertyList) -> int:
        return len(str(node_id)) + sum(len(k) + len(v) + 2 for k, v in properties.items())

    @staticmethod
    def _edge_size(edge: Edge) -> int:
        base = (
            len(str(edge.source))
            + len(str(edge.destination))
            + len(str(edge.edge_type))
            + len(str(edge.timestamp))
            + 4
        )
        return base + sum(len(k) + len(v) + 2 for k, v in edge.properties.items())

    def size_bytes(self) -> int:
        """Raw payload size (the freeze-threshold trigger)."""
        return self._size_bytes

    def serialized_size_bytes(self) -> int:
        """Memory footprint: query-optimized, so payload plus index
        overhead (the reason a per-server LogStore would waste memory)."""
        index_overhead = sum(
            len(k) + len(v) + 8 * len(nodes)
            for (k, v), nodes in self._value_index.items()
        )
        return self._size_bytes + index_overhead

"""EdgeFile: compressed storage for EdgeRecords (§3.3, Figure 2).

One record per (sourceID, EdgeType) pair::

    $src#etype,count,twidth,dwidth,pwidth,base,T_0...T_{M-1}D_0...D_{M-1}
        L_0...L_{M-1}P_0...P_{M-1}<EOR>

* ``$`` (0x01), ``#`` (0x1B) and ``,`` (0x1C) are the non-printable
  delimiters standing in for the figure's symbols; ``src``/``etype``
  are ASCII decimal.
* Metadata: edge count; ``twidth``/``dwidth`` -- the *per-record* fixed
  widths used for timestamps and destination IDs (the paper's TLength /
  DLength middle-ground: fixed-length within a record, sized to the
  record's maximum); ``pwidth`` -- fixed width of the per-edge
  property-list length fields; ``base`` -- this record's first edge's
  index in the shard-wide edge numbering (used by the deletion bitmap).
* Timestamps are stored in sorted order as zero-padded decimal, so
  lexicographic order equals numeric order and binary search works on
  raw ``extract`` calls.
* Destination IDs and property lists are ordered to match the i-th
  timestamp, avoiding any explicit mapping (§3.3).
"""

from __future__ import annotations

# zipg: hot-path

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.delimiters import (
    EDGE_FIELD_SEPARATOR,
    EDGE_METADATA_FIELDS,
    EDGE_RECORD_BEGIN,
    EDGE_TYPE_SEPARATOR,
    END_OF_RECORD,
    DelimiterMap,
)
from repro.core.errors import EdgeRecordNotFound
from repro.core.model import Edge, EdgeData
from repro.succinct.stats import AccessStats

if TYPE_CHECKING:
    from repro.perf.cache import HotSetCache

_METADATA_PROBE_BYTES = 48  # covers typical header + metadata fields
_METADATA_PROBE_MAX = 256  # fallback for records with huge ids/counts

# Flat charge for one cached EdgeRecordFragment (nine small ints plus
# object overhead) -- `estimate_size` can't see through dataclasses.
_FRAGMENT_CACHE_BYTES = 200


@dataclass
class EdgeRecordFragment:
    """A handle to one EdgeRecord inside one compressed EdgeFile.

    Produced by :meth:`EdgeFile.find_record`; all edge data is read
    lazily from the compressed file through the accessor methods.
    """

    edge_file: "EdgeFile"
    source: int
    edge_type: int
    edge_count: int
    timestamp_width: int
    destination_width: int
    plen_width: int
    base_edge_index: int
    timestamps_offset: int

    @property
    def destinations_offset(self) -> int:
        return self.timestamps_offset + self.edge_count * self.timestamp_width

    @property
    def plens_offset(self) -> int:
        return self.destinations_offset + self.edge_count * self.destination_width

    @property
    def properties_offset(self) -> int:
        return self.plens_offset + self.edge_count * self.plen_width

    # ------------------------------------------------------------------
    # Per-edge accessors (random access into the compressed file)
    # ------------------------------------------------------------------

    def _check_order(self, time_order: int) -> None:
        if not 0 <= time_order < self.edge_count:
            raise IndexError(
                f"TimeOrder {time_order} out of range [0, {self.edge_count})"
            )

    def timestamp_at(self, time_order: int) -> int:
        """Timestamp of the edge at ``time_order`` (ascending order)."""
        self._check_order(time_order)
        raw = self.edge_file._file.extract(
            self.timestamps_offset + time_order * self.timestamp_width,
            self.timestamp_width,
        )
        return int(raw)

    def destination_at(self, time_order: int) -> int:
        self._check_order(time_order)
        raw = self.edge_file._file.extract(
            self.destinations_offset + time_order * self.destination_width,
            self.destination_width,
        )
        return int(raw)

    def properties_at(self, time_order: int) -> Dict[str, str]:
        self._check_order(time_order)
        # One extract for the length fields 0..time_order (their sum is
        # the property payload offset), one for the payload itself.
        raw = self.edge_file._file.extract(
            self.plens_offset, (time_order + 1) * self.plen_width
        )
        lengths = [
            int(raw[k * self.plen_width : (k + 1) * self.plen_width])
            for k in range(time_order + 1)
        ]
        payload = self.edge_file._file.extract(
            self.properties_offset + sum(lengths[:-1]), lengths[-1]
        )
        return self.edge_file._delimiters.parse_sparse(payload)

    def edge_data_at(self, time_order: int, with_properties: bool = True) -> EdgeData:
        """The (destination, timestamp, PropertyList) triplet (§2.2).

        The timestamp, destination and property-length fields are pulled
        through one ``extract_batch`` call -- a single lockstep NPA walk
        per record instead of one walk per field.
        """
        self._check_order(time_order)
        file = self.edge_file._file
        requests = [
            (
                self.timestamps_offset + time_order * self.timestamp_width,
                self.timestamp_width,
            ),
            (
                self.destinations_offset + time_order * self.destination_width,
                self.destination_width,
            ),
        ]
        if with_properties:
            requests.append(
                (self.plens_offset, (time_order + 1) * self.plen_width)
            )
            raw_ts, raw_dst, raw_plens = file.extract_batch(requests)
            lengths = [
                int(raw_plens[k * self.plen_width : (k + 1) * self.plen_width])
                for k in range(time_order + 1)
            ]
            payload = file.extract(
                self.properties_offset + sum(lengths[:-1]), lengths[-1]
            )
            properties = self.edge_file._delimiters.parse_sparse(payload)
        else:
            raw_ts, raw_dst = file.extract_batch(requests)
            properties = {}
        return EdgeData(
            destination=int(raw_dst),
            timestamp=int(raw_ts),
            properties=properties,
        )

    def time_range(self, t_low: Optional[int], t_high: Optional[int]) -> Tuple[int, int]:
        """TimeOrder range ``[begin, end)`` of edges with timestamp in
        ``[t_low, t_high)``; ``None`` bounds are wildcards.

        Binary search over the sorted fixed-width timestamps, one
        ``extract`` per probe (§3.4).
        """
        begin = 0 if t_low is None else self._lower_bound(t_low)
        end = self.edge_count if t_high is None else self._lower_bound(t_high)
        return (begin, end)

    # zipg: scalar-ok  (binary search: O(log M) probes by design, §3.4)
    def _lower_bound(self, timestamp: int) -> int:
        low, high = 0, self.edge_count
        while low < high:
            mid = (low + high) // 2
            if self.timestamp_at(mid) < timestamp:
                low = mid + 1
            else:
                high = mid
        return low

    def all_destinations(self) -> List[int]:
        """All destination IDs in time order (one sequential extract)."""
        raw = self.edge_file._file.extract(
            self.destinations_offset, self.edge_count * self.destination_width
        )
        width = self.destination_width
        return [
            int(raw[k * width : (k + 1) * width]) for k in range(self.edge_count)
        ]

    def all_timestamps(self) -> List[int]:
        """All timestamps in time order (one sequential extract)."""
        raw = self.edge_file._file.extract(
            self.timestamps_offset, self.edge_count * self.timestamp_width
        )
        width = self.timestamp_width
        return [
            int(raw[k * width : (k + 1) * width]) for k in range(self.edge_count)
        ]

    def all_properties(self) -> List[Dict[str, str]]:
        """Property lists of every edge in time order.

        One extract covers all the length fields and one
        ``extract_batch`` covers all the payloads -- two lockstep NPA
        walks for the whole record, versus one pair of walks per edge
        when calling :meth:`properties_at` in a loop.
        """
        if self.edge_count == 0:
            return []
        raw = self.edge_file._file.extract(
            self.plens_offset, self.edge_count * self.plen_width
        )
        width = self.plen_width
        lengths = [
            int(raw[k * width : (k + 1) * width]) for k in range(self.edge_count)
        ]
        offsets: List[int] = []
        cursor = self.properties_offset
        for length in lengths:
            offsets.append(cursor)
            cursor += length
        payloads = self.edge_file._file.extract_batch(list(zip(offsets, lengths)))
        parse = self.edge_file._delimiters.parse_sparse
        return [parse(payload) for payload in payloads]


class EdgeFile:
    """Compressed edge store for one shard.

    Args:
        edges: mapping of (source, edge_type) -> edges (any order; they
            are sorted by timestamp at layout time).
        delimiters: the graph-wide delimiter map (edge properties use
            the same delimiter space as node properties).
        alpha: Succinct sampling rate.
        base_edge_index: first edge's index in the shard-wide edge
            numbering (for the deletion bitmap).
        stats: optional shared access meter.
    """

    def __init__(
        self,
        edges: Dict[Tuple[int, int], Iterable[Edge]],
        delimiters: DelimiterMap,
        alpha: int = 32,
        base_edge_index: int = 0,
        stats: Optional[AccessStats] = None,
        width_policy: str = "per-record",
        encoding: str = "succinct",
    ) -> None:
        if width_policy not in ("per-record", "global"):
            raise ValueError("width_policy must be 'per-record' or 'global'")
        self._delimiters = delimiters
        # The paper's middle ground uses per-record fixed widths
        # (TLength/DLength); "global" is the ablation baseline that
        # sizes every record for the worst case in the whole file.
        self._global_widths: Optional[Tuple[int, int]] = None
        if width_policy == "global":
            all_edges = [e for bucket in edges.values() for e in bucket]
            twidth = max((len(str(e.timestamp)) for e in all_edges), default=1)
            dwidth = max((len(str(e.destination)) for e in all_edges), default=1)
            self._global_widths = (twidth, dwidth)
        buffer = bytearray()
        record_offsets: List[int] = []
        next_base = base_edge_index
        for (source, edge_type) in sorted(edges):
            bucket = sorted(
                edges[(source, edge_type)], key=lambda e: (e.timestamp, e.destination)
            )
            record_offsets.append(len(buffer))
            buffer.extend(self._serialize_record(source, edge_type, bucket, next_base))
            next_base += len(bucket)
        self._record_offsets = np.asarray(record_offsets, dtype=np.int64)
        self._num_edges = next_base - base_edge_index
        from repro.succinct.encodings import build_flat_file

        self._file = build_flat_file(
            # Compression owns its input.  # zipg: owned-copy
            bytes(buffer), alpha=alpha, stats=stats, encoding=encoding
        )
        self.stats = self._file.stats
        self._init_cache_state()

    def _init_cache_state(self) -> None:
        from repro.perf.cache import new_cache_tag

        self._cache = None
        self._cache_epoch_of = None
        self._cache_tag = new_cache_tag()

    # ------------------------------------------------------------------
    # Hot-set cache (repro.perf)
    # ------------------------------------------------------------------

    def attach_cache(
        self,
        cache: "HotSetCache",
        epoch_of: Optional[Callable[[], int]] = None,
        coalesce_window_s: float = 0.0,
    ) -> None:
        """Cache parsed edge-record metadata and the Succinct reads."""
        self._cache = cache
        self._cache_epoch_of = epoch_of
        self._file.attach_cache(
            cache, epoch_of=epoch_of, coalesce_window_s=coalesce_window_s
        )

    def detach_cache(self) -> None:
        self._cache = None
        self._cache_epoch_of = None
        self._file.detach_cache()

    def _cache_epoch(self) -> int:
        return self._cache_epoch_of() if self._cache_epoch_of is not None else 0

    # zipg: layout-writer[edge-record]
    def _serialize_record(
        self, source: int, edge_type: int, bucket: List[Edge], base: int
    ) -> bytes:
        timestamps = [edge.timestamp for edge in bucket]
        destinations = [edge.destination for edge in bucket]
        payloads = [self._delimiters.serialize_sparse(edge.properties) for edge in bucket]
        if self._global_widths is not None:
            twidth, dwidth = self._global_widths
        else:
            twidth = max(1, max((len(str(t)) for t in timestamps), default=1))
            dwidth = max(1, max((len(str(d)) for d in destinations), default=1))
        pwidth = max(1, max((len(str(len(p))) for p in payloads), default=1))

        metadata = (len(bucket), twidth, dwidth, pwidth, base)
        assert len(metadata) + 1 == EDGE_METADATA_FIELDS  # etype rides ahead

        out = bytearray()
        out.append(EDGE_RECORD_BEGIN)
        out.extend(str(source).encode("ascii"))
        out.append(EDGE_TYPE_SEPARATOR)
        out.extend(str(edge_type).encode("ascii"))
        out.append(EDGE_FIELD_SEPARATOR)
        for field in metadata:
            out.extend(str(field).encode("ascii"))
            out.append(EDGE_FIELD_SEPARATOR)
        for timestamp in timestamps:
            out.extend(str(timestamp).zfill(twidth).encode("ascii"))
        for destination in destinations:
            out.extend(str(destination).zfill(dwidth).encode("ascii"))
        for payload in payloads:
            out.extend(str(len(payload)).zfill(pwidth).encode("ascii"))
        for payload in payloads:
            out.extend(payload)
        out.append(END_OF_RECORD)
        return bytes(out)  # zipg: owned-copy

    # ------------------------------------------------------------------
    # Record lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of EdgeRecords in this file."""
        return len(self._record_offsets)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # zipg: layout-parser[edge-record]
    def _parse_record_at(self, offset: int) -> EdgeRecordFragment:
        """Parse the record header + metadata starting at ``offset``.

        A short probe covers typical records; records whose header and
        metadata exceed it (very large ids/counts) trigger one larger
        re-extract.
        """
        probe = self._file.extract(offset, _METADATA_PROBE_BYTES)
        if not probe or probe[0] != EDGE_RECORD_BEGIN:
            raise EdgeRecordNotFound(f"no EdgeRecord at offset {offset}")
        try:
            source, fields, position = self._parse_header(probe)
        except ValueError:
            probe = self._file.extract(offset, _METADATA_PROBE_MAX)
            source, fields, position = self._parse_header(probe)
        edge_type, count, twidth, dwidth, pwidth, base = fields
        return EdgeRecordFragment(
            edge_file=self,
            source=source,
            edge_type=edge_type,
            edge_count=count,
            timestamp_width=twidth,
            destination_width=dwidth,
            plen_width=pwidth,
            base_edge_index=base,
            timestamps_offset=offset + position,
        )

    # zipg: layout-parser[edge-record]
    @staticmethod
    def _parse_header(probe: bytes) -> Tuple[int, List[int], int]:
        type_sep = probe.index(EDGE_TYPE_SEPARATOR)
        source = int(probe[1:type_sep])
        fields: List[int] = []
        position = type_sep + 1
        for _ in range(EDGE_METADATA_FIELDS):
            end = probe.index(EDGE_FIELD_SEPARATOR, position)
            fields.append(int(probe[position:end]))
            position = end + 1
        return source, fields, position

    @obs.traced("edgefile.find_record", layer="edgefile")
    def find_record(self, source: int, edge_type: int) -> Optional[EdgeRecordFragment]:
        """The EdgeRecord for (source, edge_type), or None.

        Implemented as ``search($source#edge_type,)`` on the compressed
        file (§3.4); the trailing separator prevents prefix collisions
        (type 1 vs. type 10).
        """
        cache = self._cache
        if cache is None:
            return self._find_record_uncached(source, edge_type)
        key = ("ef", self._cache_tag, self._cache_epoch(), source, edge_type)
        # Fragments are immutable metadata views, so sharing one across
        # callers is safe; None results are cached too (negative
        # caching -- record misses are common on fanned-out lookups).
        return cache.get_or_load(
            key,
            lambda: self._find_record_uncached(source, edge_type),
            nbytes=_FRAGMENT_CACHE_BYTES,
        )

    def _find_record_uncached(
        self, source: int, edge_type: int
    ) -> Optional[EdgeRecordFragment]:
        """The pre-cache ``find_record`` body."""
        pattern = (
            bytes([EDGE_RECORD_BEGIN])
            + str(source).encode("ascii")
            + bytes([EDGE_TYPE_SEPARATOR])
            + str(edge_type).encode("ascii")
            + bytes([EDGE_FIELD_SEPARATOR])
        )
        offsets = self._file.search(pattern)
        if offsets.size == 0:
            return None
        return self._parse_record_at(int(offsets[0]))

    @obs.traced("edgefile.find_records", layer="edgefile")
    def find_records(self, source: int) -> List[EdgeRecordFragment]:
        """All EdgeRecords for ``source`` (wildcard edge type)."""
        pattern = (
            bytes([EDGE_RECORD_BEGIN])
            + str(source).encode("ascii")
            + bytes([EDGE_TYPE_SEPARATOR])
        )
        offsets = self._file.search(pattern)
        return [self._parse_record_at(int(offset)) for offset in offsets]

    @obs.traced("edgefile.records_of_type", layer="edgefile")
    def records_of_type(self, edge_type: int) -> List[EdgeRecordFragment]:
        """All EdgeRecords of ``edge_type`` regardless of source (used
        by regular path queries: ``get_edge_record(*, edgeType)``)."""
        pattern = (
            bytes([EDGE_TYPE_SEPARATOR])
            + str(edge_type).encode("ascii")
            + bytes([EDGE_FIELD_SEPARATOR])
        )
        matches = self._file.search(pattern)
        records = []
        for match in matches:
            index = int(np.searchsorted(self._record_offsets, int(match), side="right")) - 1
            records.append(self._parse_record_at(int(self._record_offsets[index])))
        return records

    # zipg: scalar-ok  (one verification probe per search hit)
    @obs.traced("edgefile.find_edges_by_property", layer="edgefile")
    def find_edges_by_property(
        self, property_id: str, value: str
    ) -> List[Tuple[EdgeRecordFragment, int]]:
        """Edges whose PropertyList has ``property_id == value``.

        The extension §3.3 flags ("ZipG currently does not support
        search on edge propertyLists, but can be trivially extended to
        do so using ideas similar to NodeFile"): one compressed search
        for the delimiter-prefixed value, then each hit is mapped to its
        record (offset directory) and its TimeOrder (length-prefix
        walk) and verified. Returns ``(fragment, time_order)`` pairs in
        file order.
        """
        pattern = self._delimiters.delimiter_of(property_id) + value.encode("utf-8")
        hits = []
        for offset in self._file.search(pattern):
            located = self._locate_edge(int(offset))
            if located is None:
                continue
            fragment, time_order = located
            if fragment.properties_at(time_order).get(property_id) == value:
                hits.append((fragment, time_order))
        return hits

    def _locate_edge(self, offset: int):
        """Map a flat-file offset inside a record's property payload to
        (fragment, time_order); None if the offset lies outside one."""
        index = int(np.searchsorted(self._record_offsets, offset, side="right")) - 1
        if index < 0:
            return None
        fragment = self._parse_record_at(int(self._record_offsets[index]))
        if offset < fragment.properties_offset:
            return None  # matched inside metadata/timestamps/destinations
        raw = self._file.extract(
            fragment.plens_offset, fragment.edge_count * fragment.plen_width
        )
        cursor = fragment.properties_offset
        for time_order in range(fragment.edge_count):
            width = fragment.plen_width
            length = int(raw[time_order * width : (time_order + 1) * width])
            if offset < cursor + length:
                return (fragment, time_order)
            cursor += length
        return None

    # ------------------------------------------------------------------
    # Binary serialization (§4.1)
    # ------------------------------------------------------------------

    def sections(self) -> dict:
        """Write-side sections (codec structures plus the record-offset
        directory); array payloads are zero-copy chunks, the codec a
        nested section dict."""
        from repro.succinct.serialize import array_chunks, pack_ints

        return {
            "meta": pack_ints(self._num_edges),
            "record_offsets": array_chunks(self._record_offsets),
            "file": self._file.sections(),
        }

    def to_bytes(self) -> bytes:
        """Serialize the compressed EdgeFile to one owned blob."""
        from repro.succinct.serialize import pack_sections

        return pack_sections(self.sections())

    @classmethod
    def from_bytes(cls, blob: bytes, delimiters: DelimiterMap,
                   stats: Optional[AccessStats] = None) -> "EdgeFile":
        """Reconstruct an EdgeFile serialized with :meth:`to_bytes`
        without copying payloads (views over ``blob``); the flat-file
        codec is rebuilt through its self-describing format tag."""
        from repro.succinct.encodings import decode_flat_file
        from repro.succinct.serialize import unpack_array, unpack_ints, unpack_sections

        sections = unpack_sections(blob)
        instance = cls.__new__(cls)
        instance._delimiters = delimiters
        instance._global_widths = None
        (instance._num_edges,) = unpack_ints(sections["meta"])
        instance._record_offsets = unpack_array(sections["record_offsets"])
        instance._file = decode_flat_file(sections["file"], stats=stats)
        instance.stats = instance._file.stats
        instance._init_cache_state()
        return instance

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    def original_size_bytes(self) -> int:
        return self._file.original_size_bytes()

    def serialized_size_bytes(self) -> int:
        return self._file.serialized_size_bytes() + self._record_offsets.nbytes

"""Write-ahead log for LogStore mutations (§4.1 durability).

The paper persists NodeFiles/EdgeFiles as flat files; everything
between two snapshots lives only in the in-memory LogStore.  This WAL
closes that window: every store mutation appends one self-checksummed
record *before* it is applied, and :func:`repro.core.persistence.
load_store` replays the tail on recovery -- the LSM/WAL recovery
discipline (O'Neil et al.) applied to ZipG's single-LogStore design.

On-disk format -- one text line per record::

    <crc32:08x> <json [lsn, op, args]>\\n

The CRC covers the JSON payload, so a torn tail (crash mid-write) is
detected and dropped at replay instead of corrupting the store: replay
applies the longest valid record prefix and ignores the rest.  Record
ops mirror the ZipG mutation surface: ``node``, ``edge``, ``del_node``,
``del_edge``, plus ``freeze`` and ``compact`` so structural events
replay at the exact point they originally happened (replay never
re-triggers threshold freezes on its own).

Durability policy (:class:`WalConfig.fsync_policy`):

* ``"always"`` -- flush + fsync every record (lose at most the record
  being written when the process dies);
* ``"batch"``  -- fsync every ``batch_size`` records (bounded loss,
  amortized fsync cost);
* ``"never"``  -- leave flushing to the OS (fastest; loss window is
  the OS page cache).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import IO, List, Optional, Tuple

from repro import chaos, obs

FSYNC_POLICIES = ("always", "batch", "never")

#: Crash points exercised by the chaos suite: between a record landing
#: in the file and it being fsync'd, and right after the fsync.
CRASH_POINT_PRE_FSYNC = "wal.pre_fsync"
CRASH_POINT_POST_FSYNC = "wal.post_fsync"
CRASH_POINT_REPAIR = "wal.repair"
SITE_WAL_SYNC = "wal.sync"

WAL_FILENAME = "wal.log"


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    lsn: int
    op: str
    args: List[object]


@dataclass(frozen=True)
class WalConfig:
    """Durability knobs for a :class:`WriteAheadLog`."""

    fsync_policy: str = "always"
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"got {self.fsync_policy!r}"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


def _encode(record: WalRecord) -> bytes:
    payload = json.dumps([record.lsn, record.op, record.args],
                         separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n".encode("utf-8")


def _decode_line(line: bytes) -> Optional[WalRecord]:
    """Parse one line; ``None`` if torn/corrupt (bad shape, CRC, JSON)."""
    if not line.endswith(b"\n"):
        return None
    body = line[:-1]
    if len(body) < 10 or body[8:9] != b" ":
        return None
    try:
        crc = int(body[:8], 16)
    except ValueError:
        return None
    payload = body[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if (not isinstance(decoded, list) or len(decoded) != 3
            or not isinstance(decoded[0], int) or not isinstance(decoded[1], str)
            or not isinstance(decoded[2], list)):
        return None
    return WalRecord(decoded[0], decoded[1], decoded[2])


def read_records(path: str) -> Tuple[List[WalRecord], bool]:
    """The longest valid record prefix of the WAL at ``path``.

    Returns ``(records, torn_tail)`` where ``torn_tail`` reports that
    trailing bytes were dropped (a crash tore the last write).  A
    missing file is an empty, un-torn log."""
    if not os.path.exists(path):
        return [], False
    records: List[WalRecord] = []
    torn = False
    with open(path, "rb") as handle:
        for line in handle:
            record = _decode_line(line)
            if record is None:
                torn = True
                break
            records.append(record)
    if torn:
        obs.counter(
            "zipg_wal_torn_tail_total",
            help="WAL recoveries that dropped a torn trailing record",
        ).inc()
    return records, torn


def repair_torn_tail(path: str) -> bool:
    """Truncate torn trailing bytes so future appends start on a clean
    record boundary (otherwise the next record would be glued onto the
    torn prefix and both would be lost).  Returns whether bytes were
    dropped.  Must be called before re-arming a recovered WAL for
    appends; pure readers replay the valid prefix either way."""
    if not os.path.exists(path):
        return False
    size = os.path.getsize(path)
    valid = 0
    with open(path, "rb") as handle:
        for line in handle:
            if _decode_line(line) is None:
                break
            valid += len(line)
    if valid == size:
        return False
    chaos.crash_point(CRASH_POINT_REPAIR, valid_bytes=valid, torn_bytes=size - valid)
    with open(path, "r+b") as handle:
        handle.truncate(valid)
        handle.flush()
        os.fsync(handle.fileno())
    obs.counter(
        "zipg_wal_tail_repairs_total",
        help="torn WAL tails truncated before re-arming the log",
    ).inc()
    return True


class WriteAheadLog:
    """Appender for one store root's WAL file.

    LSNs are monotone across rotations; the snapshot manifest records
    the last LSN it covers, so replay after a crash between snapshot
    commit and WAL rotation skips already-snapshotted records instead
    of double-applying them."""

    def __init__(self, path: str, config: Optional[WalConfig] = None,
                 next_lsn: int = 1) -> None:
        self.path = path
        self.config = config or WalConfig()
        self._next_lsn = next_lsn
        self._unsynced = 0
        self._handle: Optional[IO[bytes]] = None

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 if none ever)."""
        return self._next_lsn - 1

    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append_record(self, op: str, args: List[object]) -> int:
        """Durably append one record; returns its LSN.

        The record is written (torn-write injectable), then fsync'd per
        policy, with chaos crash points on both sides of the fsync so
        tests can kill the process model at either instant."""
        lsn = self._next_lsn
        record = WalRecord(lsn, op, list(args))
        handle = self._ensure_open()
        chaos.write_bytes(chaos.SITE_WAL_WRITE, handle, _encode(record), lsn=lsn)
        handle.flush()
        self._next_lsn = lsn + 1
        obs.counter("zipg_wal_appends_total",
                    help="records appended to the write-ahead log").inc()
        chaos.crash_point(CRASH_POINT_PRE_FSYNC, lsn=lsn)
        self._unsynced += 1
        if self.config.fsync_policy == "always":
            self._fsync()
        elif (self.config.fsync_policy == "batch"
              and self._unsynced >= self.config.batch_size):
            self._fsync()
        chaos.crash_point(CRASH_POINT_POST_FSYNC, lsn=lsn)
        return lsn

    def _fsync(self) -> None:
        if self._handle is not None:
            os.fsync(self._handle.fileno())
        self._unsynced = 0
        obs.counter("zipg_wal_fsyncs_total",
                    help="fsync calls issued by the write-ahead log").inc()

    def sync(self) -> None:
        """Force outstanding records to disk regardless of policy
        (chaos site ``wal.sync``)."""
        chaos.kick(SITE_WAL_SYNC, unsynced=self._unsynced)
        if self._handle is not None:
            self._handle.flush()
        if self._unsynced:
            self._fsync()

    def rotate(self) -> None:
        """Truncate the log after a committed snapshot superseded it.

        LSNs keep counting up -- the manifest's ``wal_last_lsn`` is the
        replay cutoff, so truncation is safe at any time after commit."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

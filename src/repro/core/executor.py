"""Parallel fan-out executor for multi-shard queries (§4.1).

All-shard operations (``get_node_ids``, ``find_edges``, the cluster
broadcast path) fan one function out over many shards. With the CPython
GIL the win comes from the shards' numpy kernels releasing the GIL
during their gathers, and from modeling the paper's per-core shard
parallelism with real concurrent execution rather than a serial loop.

Thread-safety contract: hot-path ``stats.counter += n`` increments on
:class:`~repro.succinct.stats.AccessStats` are not atomic, so two work
items whose shards *share* one stats object must never run on two
threads at once. :meth:`ShardExecutor.map` enforces this by grouping
items that share a stats instance into a single serial task.

Failure semantics: each work item may be retried (``retries`` +
exponential ``backoff_s``), bounded by a cooperative ``deadline_s``
that budgets the *entire* item -- all attempts and the backoff sleeps
between them, so total wall time is at most the budget plus one
attempt (over-budget results are discarded as
:class:`~repro.core.errors.DeadlineExceeded`), and ``partial=True``
returns structured per-item
:class:`ShardResult`\\ s instead of raising on the first failure --
the degraded-query building block the replicated cluster uses.  Every
invocation passes through the ``executor.shard_call`` chaos site, so
all of these paths are fault-injectable.

Observability: each submitted group runs inside a *copy* of the
caller's :mod:`contextvars` context, so spans opened by work items
attach to the query's current :class:`repro.obs.tracing.Span` instead
of starting orphan traces on the pool threads.  Retries, failures,
and deadline misses publish ``zipg_executor_*`` counters.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro import chaos, obs
from repro.core.errors import DeadlineExceeded
from repro.perf.coalesce import SingleFlight

_DEFAULT_WORKER_CAP = 8
#: Exponential backoff is capped so a high retry count cannot stall a
#: query for minutes.
_BACKOFF_CAP_S = 2.0


def default_max_workers() -> int:
    """Default pool width: one thread per core, capped."""
    return max(1, min(_DEFAULT_WORKER_CAP, os.cpu_count() or 1))


def _count_shared_fanout() -> None:
    obs.counter(
        "zipg_executor_coalesced_fanouts_total",
        help="fan-outs that joined an identical in-flight fan-out",
    ).inc()


@dataclass
class ShardResult:
    """Outcome of one fanned-out work item (``partial=True`` mode)."""

    index: int
    ok: bool
    value: object = None
    error: Optional[BaseException] = None
    attempts: int = 1


class ShardExecutor:
    """A reusable thread pool for fanning a query out over shards.

    Args:
        max_workers: pool width. ``None`` picks a per-core default;
            ``1`` degrades to a plain serial loop (useful for
            deterministic debugging and as the zero-thread baseline).

    The underlying pool is created lazily on the first parallel
    :meth:`map`, so constructing a store never spawns threads that a
    serial workload would not use.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = default_max_workers()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._fanout_flights = SingleFlight(on_shared=_count_shared_fanout)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="zipg-shard",
                )
            return self._pool

    def _run_one(
        self,
        fn: Callable,
        item: object,
        index: int,
        retries: int,
        backoff_s: float,
        deadline_s: Optional[float],
    ) -> ShardResult:
        """One work item through the retry/deadline state machine.

        ``deadline_s`` budgets the *whole* item -- every attempt plus
        the backoff sleeps between them -- not each attempt in
        isolation.  (Per-attempt deadlines made ``1 + retries`` slow
        attempts legal, so a query configured with a 50ms deadline and
        3 retries could stall for 200ms-plus; callers size deadlines
        for the item.)  The budget is enforced cooperatively, so total
        wall time is bounded by ``deadline_s`` plus one attempt: a
        result arriving past the budget is discarded as
        :class:`DeadlineExceeded`, a failure with no budget left stops
        retrying (chaining the attempt's error as ``__cause__``), and
        a backoff sleep that would not fit the remaining budget is
        skipped so the final attempt gets the time instead.

        Never raises an :class:`Exception` (failures come back as a
        ``ShardResult``); :class:`~repro.chaos.SimulatedCrash` and
        other ``BaseException``\\ s still propagate -- retry logic must
        not survive a process kill."""
        attempt = 0
        start = time.monotonic()
        while True:
            try:
                chaos.kick(chaos.SITE_EXECUTOR_CALL, index=index, attempt=attempt)
                value = fn(item)
                elapsed = time.monotonic() - start
                if deadline_s is not None and elapsed > deadline_s:
                    obs.counter(
                        "zipg_executor_deadline_exceeded_total",
                        help="shard calls whose result missed the deadline",
                    ).inc()
                    raise DeadlineExceeded(
                        f"shard call finished {elapsed:.4f}s into a "
                        f"{deadline_s}s budget"
                    )
                return ShardResult(index, True, value, None, attempt + 1)
            except Exception as exc:
                if attempt >= retries:
                    obs.counter(
                        "zipg_executor_failures_total",
                        help="shard calls failed after exhausting retries",
                    ).inc()
                    return ShardResult(index, False, None, exc, attempt + 1)
                remaining = (
                    None if deadline_s is None
                    else deadline_s - (time.monotonic() - start)
                )
                if remaining is not None and remaining <= 0:
                    # Budget exhausted: retrying now could only return
                    # another over-deadline result. Surface the budget
                    # miss with the attempt's failure as the cause.
                    if not isinstance(exc, DeadlineExceeded):
                        obs.counter(
                            "zipg_executor_deadline_exceeded_total",
                            help="shard calls whose result missed the deadline",
                        ).inc()
                        deadline_error = DeadlineExceeded(
                            f"retry budget of {deadline_s}s exhausted after "
                            f"{attempt + 1} attempt(s)"
                        )
                        deadline_error.__cause__ = exc
                        exc = deadline_error
                    obs.counter(
                        "zipg_executor_failures_total",
                        help="shard calls failed after exhausting retries",
                    ).inc()
                    return ShardResult(index, False, None, exc, attempt + 1)
                obs.counter("zipg_executor_retries_total",
                            help="shard call retries").inc()
                if backoff_s > 0:
                    sleep_s = min(backoff_s * (2 ** attempt), _BACKOFF_CAP_S)
                    # A sleep that would overrun the budget is skipped:
                    # the remaining time goes to the attempt, which can
                    # still beat the deadline.
                    if remaining is None or sleep_s < remaining:
                        time.sleep(sleep_s)
                attempt += 1

    def map(
        self,
        fn: Callable,
        items: Sequence,
        stats_of: Optional[Callable] = None,
        *,
        retries: int = 0,
        backoff_s: float = 0.0,
        deadline_s: Optional[float] = None,
        partial: bool = False,
    ) -> List:
        """``[fn(item) for item in items]``, fanned across the pool.

        Results come back in input order. ``stats_of(item)`` names the
        :class:`AccessStats` instance the item mutates -- items sharing
        one instance are chained into a single serial task so unlocked
        ``+=`` increments never race.

        Failure handling: each item is attempted ``1 + retries`` times
        with exponential backoff; a cooperative ``deadline_s`` budgets
        each item's attempts *and* backoff sleeps as a whole,
        converting slow items into failures. By default the
        first exhausted failure propagates to the caller; with
        ``partial=True`` the return value is a list of
        :class:`ShardResult` (one per item, input order) carrying
        either the value or the structured error.
        """
        items = list(items)

        def run_item(pair) -> ShardResult:
            index, item = pair
            return self._run_one(fn, item, index, retries, backoff_s, deadline_s)

        if self.max_workers == 1 or len(items) <= 1:
            outcomes = [run_item(pair) for pair in enumerate(items)]
            return self._collect(outcomes, partial)

        groups: dict = {}
        order: List = []
        for index, item in enumerate(items):
            stats = stats_of(item) if stats_of is not None else None
            key = id(stats) if stats is not None else ("solo", index)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((index, item))

        def run_group(group):
            with obs.span("executor.worker", layer="executor", items=len(group)):
                return [run_item(pair) for pair in group]

        pool = self._ensure_pool()
        # One context copy per group: a contextvars.Context may only be
        # entered by one thread at a time, and the copy carries the
        # caller's current span into the worker.
        futures = [
            pool.submit(contextvars.copy_context().run, run_group, groups[key])
            for key in order
        ]
        outcomes: List[Optional[ShardResult]] = [None] * len(items)
        for future in futures:
            for outcome in future.result():
                outcomes[outcome.index] = outcome
        return self._collect([o for o in outcomes if o is not None], partial)

    def map_shared(
        self,
        flight_key: Optional[object],
        fn: Callable,
        items: Sequence,
        stats_of: Optional[Callable] = None,
        *,
        retries: int = 0,
        backoff_s: float = 0.0,
        deadline_s: Optional[float] = None,
        partial: bool = False,
    ) -> List:
        """:meth:`map`, with identical concurrent fan-outs coalesced.

        Callers presenting the same ``flight_key`` while a matching
        fan-out is in flight share its result list instead of fanning
        out again (single-flight). The shared list must be treated as
        read-only. ``flight_key=None`` bypasses coalescing entirely.

        The key must capture everything the result depends on -- the
        query, its arguments, and a generation counter for the data
        (e.g. the store epoch), otherwise a concurrent mutation could
        hand one caller another caller's stale view.
        """
        if flight_key is None:
            return self.map(
                fn, items, stats_of, retries=retries,
                backoff_s=backoff_s, deadline_s=deadline_s, partial=partial,
            )
        return self._fanout_flights.do(
            flight_key,
            lambda: self.map(
                fn, items, stats_of, retries=retries,
                backoff_s=backoff_s, deadline_s=deadline_s, partial=partial,
            ),
        )

    @staticmethod
    def _collect(outcomes: List[ShardResult], partial: bool) -> List:
        if partial:
            return outcomes
        for outcome in outcomes:
            if not outcome.ok and outcome.error is not None:
                raise outcome.error
        return [outcome.value for outcome in outcomes]

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor can be reused,
        a new pool is created on the next parallel map)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Parallel fan-out executor for multi-shard queries (§4.1).

All-shard operations (``get_node_ids``, ``find_edges``, the cluster
broadcast path) fan one function out over many shards. With the CPython
GIL the win comes from the shards' numpy kernels releasing the GIL
during their gathers, and from modeling the paper's per-core shard
parallelism with real concurrent execution rather than a serial loop.

Thread-safety contract: hot-path ``stats.counter += n`` increments on
:class:`~repro.succinct.stats.AccessStats` are not atomic, so two work
items whose shards *share* one stats object must never run on two
threads at once. :meth:`ShardExecutor.map` enforces this by grouping
items that share a stats instance into a single serial task.

Observability: each submitted group runs inside a *copy* of the
caller's :mod:`contextvars` context, so spans opened by work items
attach to the query's current :class:`repro.obs.tracing.Span` instead
of starting orphan traces on the pool threads.
"""

from __future__ import annotations

import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro import obs

_DEFAULT_WORKER_CAP = 8


def default_max_workers() -> int:
    """Default pool width: one thread per core, capped."""
    return max(1, min(_DEFAULT_WORKER_CAP, os.cpu_count() or 1))


class ShardExecutor:
    """A reusable thread pool for fanning a query out over shards.

    Args:
        max_workers: pool width. ``None`` picks a per-core default;
            ``1`` degrades to a plain serial loop (useful for
            deterministic debugging and as the zero-thread baseline).

    The underlying pool is created lazily on the first parallel
    :meth:`map`, so constructing a store never spawns threads that a
    serial workload would not use.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = default_max_workers()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="zipg-shard",
                )
            return self._pool

    def map(
        self,
        fn: Callable,
        items: Sequence,
        stats_of: Optional[Callable] = None,
    ) -> List:
        """``[fn(item) for item in items]``, fanned across the pool.

        Results come back in input order; an exception in any work item
        propagates to the caller. ``stats_of(item)`` names the
        :class:`AccessStats` instance the item mutates -- items sharing
        one instance are chained into a single serial task so unlocked
        ``+=`` increments never race.
        """
        items = list(items)
        if self.max_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]

        groups: dict = {}
        order: List = []
        for index, item in enumerate(items):
            stats = stats_of(item) if stats_of is not None else None
            key = id(stats) if stats is not None else ("solo", index)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((index, item))

        def run_group(group):
            with obs.span("executor.worker", layer="executor", items=len(group)):
                return [(index, fn(item)) for index, item in group]

        pool = self._ensure_pool()
        # One context copy per group: a contextvars.Context may only be
        # entered by one thread at a time, and the copy carries the
        # caller's current span into the worker.
        futures = [
            pool.submit(contextvars.copy_context().run, run_group, groups[key])
            for key in order
        ]
        results: List = [None] * len(items)
        for future in futures:
            for index, result in future.result():
                results[index] = result
        return results

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor can be reused,
        a new pool is created on the next parallel map)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""NodeFile: compressed storage for NodeIDs and node properties (§3.3).

Layout (Figure 1). Three data structures:

1. the graph-wide PropertyID -> (order, delimiter) map
   (:class:`~repro.core.delimiters.DelimiterMap`, shared, not owned
   here);
2. a flat unstructured file, compressed with Succinct, holding one
   record per node::

       <len_0><len_1>...<len_{P-1}><d_0>v_0<d_1>v_1...<d_{P-1}}>v_{P-1}<EOR>

   where ``len_k`` is the length of the k-th property value encoded in
   a *global fixed width* number of ASCII digits (the paper's ``len``),
   ``d_k`` is PropertyID k's delimiter, absent values contribute a bare
   delimiter (Fig. 1: Bob's missing age), and ``EOR`` is the
   end-of-record delimiter;
3. a two-dimensional array of sorted NodeIDs and the offset of each
   node's record in the flat file.

``get_node_property`` is two array lookups plus one small ``extract``
for the length prefix and one for the value itself; ``get_node_ids``
brackets the value between its PropertyID's delimiter and the next
lexicographically larger delimiter and runs Succinct ``search`` (§3.4).
"""

from __future__ import annotations

# zipg: hot-path

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.delimiters import END_OF_RECORD, DelimiterMap
from repro.core.errors import NodeNotFound
from repro.core.model import PropertyList
from repro.succinct.stats import AccessStats

if TYPE_CHECKING:
    from repro.perf.cache import HotSetCache


class NodeFile:
    """Compressed node store for one shard.

    Args:
        nodes: mapping of NodeID -> PropertyList for the shard.
        delimiters: the graph-wide delimiter map.
        alpha: Succinct sampling rate.
        stats: optional shared access meter.
        encoding: flat-file codec tag (see
            :mod:`repro.succinct.encodings`).
    """

    # zipg: layout-writer[node-record]
    def __init__(
        self,
        nodes: Dict[int, PropertyList],
        delimiters: DelimiterMap,
        alpha: int = 32,
        stats: Optional[AccessStats] = None,
        encoding: str = "succinct",
    ) -> None:
        self._delimiters = delimiters
        serialized: Dict[int, tuple] = {
            node_id: delimiters.serialize_values(properties)
            for node_id, properties in nodes.items()
        }
        max_length = max(
            (length for _, lengths in serialized.values() for length in lengths),
            default=0,
        )
        self._len_width = max(1, len(str(max_length)))

        node_ids = sorted(serialized)
        offsets: List[int] = []
        buffer = bytearray()
        for node_id in node_ids:
            payload, lengths = serialized[node_id]
            offsets.append(len(buffer))
            for length in lengths:
                buffer.extend(str(length).zfill(self._len_width).encode("ascii"))
            buffer.extend(payload)
            buffer.append(END_OF_RECORD)
        self._node_ids = np.asarray(node_ids, dtype=np.int64)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        from repro.succinct.encodings import build_flat_file

        self._file = build_flat_file(
            # Compression owns its input.  # zipg: owned-copy
            bytes(buffer), alpha=alpha, stats=stats, encoding=encoding
        )
        self.stats = self._file.stats
        self._init_cache_state()

    def _init_cache_state(self) -> None:
        from repro.perf.cache import new_cache_tag

        self._cache = None
        self._cache_epoch_of = None
        self._cache_tag = new_cache_tag()

    # ------------------------------------------------------------------
    # Hot-set cache (repro.perf)
    # ------------------------------------------------------------------

    def attach_cache(
        self,
        cache: "HotSetCache",
        epoch_of: Optional[Callable[[], int]] = None,
        coalesce_window_s: float = 0.0,
    ) -> None:
        """Cache decoded PropertyLists and the underlying Succinct reads."""
        self._cache = cache
        self._cache_epoch_of = epoch_of
        self._file.attach_cache(
            cache, epoch_of=epoch_of, coalesce_window_s=coalesce_window_s
        )

    def detach_cache(self) -> None:
        self._cache = None
        self._cache_epoch_of = None
        self._file.detach_cache()

    def _cache_epoch(self) -> int:
        return self._cache_epoch_of() if self._cache_epoch_of is not None else 0

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._node_ids)

    def __contains__(self, node_id: int) -> bool:
        index = int(np.searchsorted(self._node_ids, node_id))
        return index < len(self._node_ids) and self._node_ids[index] == node_id

    def node_ids(self) -> np.ndarray:
        return self._node_ids.copy()

    def node_index(self, node_id: int) -> int:
        """Position of ``node_id`` in the sorted NodeID array (also its
        position in the shard's node deletion bitmap)."""
        index = int(np.searchsorted(self._node_ids, node_id))
        if index >= len(self._node_ids) or self._node_ids[index] != node_id:
            raise NodeNotFound(node_id)
        return index

    def _record_offset(self, node_id: int) -> int:
        self.stats.random_accesses += 1  # NodeID -> offset array lookup
        return int(self._offsets[self.node_index(node_id)])

    def _offset_to_node(self, offset: int) -> int:
        index = int(np.searchsorted(self._offsets, offset, side="right")) - 1
        return int(self._node_ids[index])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    # zipg: layout-parser[node-record]
    def get_property(self, node_id: int, property_id: str) -> Optional[str]:
        """Value of one property for ``node_id`` (None if unset)."""
        record = self._record_offset(node_id)
        order = self._delimiters.order_of(property_id)
        width = self._len_width
        # One extract for the length fields up to and including ours...
        length_bytes = self._file.extract(record, (order + 1) * width)
        lengths = [
            int(length_bytes[k * width : (k + 1) * width]) for k in range(order + 1)
        ]
        if lengths[order] == 0:
            return None
        # ...then one extract for the value, whose start we can now compute.
        payload_start = record + len(self._delimiters) * width
        delim_width = self._delimiters.delimiter_width
        value_start = (
            payload_start + sum(lengths[:order]) + (order + 1) * delim_width
        )
        return self._file.extract(value_start, lengths[order]).decode("utf-8")

    # zipg: layout-parser[node-record]
    @obs.traced("nodefile.get_properties", layer="nodefile")
    def get_properties(
        self, node_id: int, property_ids: Optional[List[str]] = None
    ) -> PropertyList:
        """PropertyList of ``node_id`` (all properties, or a subset).

        The subset path reads the whole length-field block once and then
        fetches every requested value through one ``extract_batch`` call
        (a single lockstep NPA walk), instead of two extracts per
        property.
        """
        cache = self._cache
        if cache is None:
            return self._get_properties_uncached(node_id, property_ids)
        wanted = None if property_ids is None else tuple(property_ids)
        key = ("nf", self._cache_tag, self._cache_epoch(), node_id, wanted)
        value = cache.get_or_load(
            key, lambda: self._get_properties_uncached(node_id, property_ids)
        )
        # Callers own their PropertyList; hand out a copy so the cached
        # dict can't be mutated behind the cache's back.
        return dict(value)

    # zipg: layout-parser[node-record]
    def _get_properties_uncached(
        self, node_id: int, property_ids: Optional[List[str]] = None
    ) -> PropertyList:
        """The pre-cache ``get_properties`` body."""
        record = self._record_offset(node_id)
        width = self._len_width
        count = len(self._delimiters)
        length_bytes = self._file.extract(record, count * width)
        lengths = [int(length_bytes[k * width : (k + 1) * width]) for k in range(count)]
        if property_ids is not None:
            payload_start = record + count * width
            delim_width = self._delimiters.delimiter_width
            prefix = [0]
            for length in lengths:
                prefix.append(prefix[-1] + length)
            wanted = []
            requests = []
            for property_id in property_ids:
                order = self._delimiters.order_of(property_id)
                if lengths[order] == 0:
                    continue
                value_start = (
                    payload_start + prefix[order] + (order + 1) * delim_width
                )
                wanted.append(property_id)
                requests.append((value_start, lengths[order]))
            values = self._file.extract_batch(requests)
            return {
                property_id: value.decode("utf-8")
                for property_id, value in zip(wanted, values)
            }
        payload_size = sum(lengths) + count * self._delimiters.delimiter_width
        payload = self._file.extract(record + count * width, payload_size)
        # Decode using the length fields: zero-length means absent (a
        # bare delimiter, Fig. 1), so no value-vs-empty ambiguity.
        delim_width = self._delimiters.delimiter_width
        result: PropertyList = {}
        position = 0
        for property_id, length in zip(self._delimiters.property_ids(), lengths):
            position += delim_width
            if length:
                result[property_id] = payload[position : position + length].decode("utf-8")
            position += length
        return result

    @obs.traced("nodefile.find_nodes", layer="nodefile")
    def find_nodes(self, properties: PropertyList) -> List[int]:
        """NodeIDs whose PropertyList matches every (pid, value) pair.

        Each pair becomes one Succinct ``search`` with the value
        bracketed between its delimiter and the next one; multiple pairs
        intersect (§3.4). An empty ``properties`` matches every node.
        """
        if not properties:
            return self._node_ids.tolist()
        result: Optional[set] = None
        for property_id, value in properties.items():
            pattern = (
                self._delimiters.delimiter_of(property_id)
                + value.encode("utf-8")
                + self._delimiters.next_delimiter_after(property_id)
            )
            offsets = self._file.search(pattern)
            matches = {self._offset_to_node(int(offset)) for offset in offsets}
            result = matches if result is None else result & matches
            if not result:
                return []
        return sorted(result)

    @obs.traced("nodefile.find_nodes_by_prefix", layer="nodefile")
    def find_nodes_by_prefix(self, property_id: str, prefix: str) -> List[int]:
        """NodeIDs whose ``property_id`` value *starts with* ``prefix``.

        The §3.3 layout makes this a one-search extension of exact
        matching: drop the closing delimiter from the pattern. An empty
        prefix matches every node that has the property set.
        """
        pattern = self._delimiters.delimiter_of(property_id) + prefix.encode("utf-8")
        offsets = self._file.search(pattern)
        matches = set()
        for offset in offsets:
            node_id = self._offset_to_node(int(offset))
            if prefix == "":
                # A bare delimiter also matches absent values; verify.
                if self.get_property(node_id, property_id) is None:
                    continue
            matches.add(node_id)
        return sorted(matches)

    # ------------------------------------------------------------------
    # Binary serialization (§4.1)
    # ------------------------------------------------------------------

    def sections(self) -> dict:
        """Write-side sections (codec structures plus the NodeID/offset
        directory and length-field width); array payloads are zero-copy
        chunks, the codec a nested section dict."""
        from repro.succinct.serialize import array_chunks, pack_ints

        return {
            "meta": pack_ints(self._len_width),
            "node_ids": array_chunks(self._node_ids),
            "offsets": array_chunks(self._offsets),
            "file": self._file.sections(),
        }

    def to_bytes(self) -> bytes:
        """Serialize the compressed NodeFile to one owned blob."""
        from repro.succinct.serialize import pack_sections

        return pack_sections(self.sections())

    @classmethod
    def from_bytes(cls, blob: bytes, delimiters: DelimiterMap,
                   stats: Optional[AccessStats] = None) -> "NodeFile":
        """Reconstruct a NodeFile serialized with :meth:`to_bytes`
        without re-running compression or copying payloads: the
        directory arrays are views over ``blob`` and the flat-file
        codec is rebuilt through its self-describing format tag."""
        from repro.succinct.encodings import decode_flat_file
        from repro.succinct.serialize import unpack_array, unpack_ints, unpack_sections

        sections = unpack_sections(blob)
        instance = cls.__new__(cls)
        instance._delimiters = delimiters
        (instance._len_width,) = unpack_ints(sections["meta"])
        instance._node_ids = unpack_array(sections["node_ids"])
        instance._offsets = unpack_array(sections["offsets"])
        instance._file = decode_flat_file(sections["file"], stats=stats)
        instance.stats = instance._file.stats
        instance._init_cache_state()
        return instance

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    def original_size_bytes(self) -> int:
        return self._file.original_size_bytes()

    def serialized_size_bytes(self) -> int:
        """Compressed footprint: Succinct file + NodeID/offset arrays."""
        directory = self._node_ids.nbytes + self._offsets.nbytes
        return self._file.serialized_size_bytes() + directory

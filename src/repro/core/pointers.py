"""Fanned-update pointers (§3.5, Figure 3).

As new data for a node is appended after its original shard was
compressed, the node's data becomes *fragmented* across shards. Update
pointers are stored only at the shard where the node first occurs and
chain together every later shard holding data for that node, so a query
touches exactly the shards it needs instead of broadcasting to all.

The pointers are kept uncompressed (updates are a small fraction of
real workloads, so the overhead is minimal).

Thread safety: queries fan out through
:class:`repro.core.executor.ShardExecutor` while the ingest path keeps
appending, so every table is protected by one non-reentrant lock.
Methods named ``*_locked`` assume the caller already holds it.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Set, Tuple

from repro import obs

#: Process-wide pointer-table lookup meter: one increment per
#: ``node_shards`` / ``edge_shards`` / ``all_edge_shards`` resolution.
_POINTER_LOOKUPS = obs.counter(
    "zipg_pointer_lookups_total", help="update-pointer table resolutions"
)

ACTIVE_LOGSTORE = -1
"""Pseudo shard id for the active LogStore; promoted to a concrete
shard id when the LogStore is frozen."""


class UpdatePointerTable:
    """Pointers from (NodeID, kind) to the shards holding newer data.

    ``kind`` distinguishes node-property fragments from edge fragments:
    edge pointers are per (NodeID, EdgeType) so an edge query follows
    only the shards that actually received edges of that type.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._node_pointers: Dict[int, List[int]] = {}
        self._edge_pointers: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    # Registration (called when a LogStore is frozen into a new shard)
    # ------------------------------------------------------------------

    def add_node_pointer(self, node_id: int, shard_id: int) -> None:
        with self._lock:
            shards = self._node_pointers.setdefault(node_id, [])
            if shard_id not in shards:
                shards.append(shard_id)

    def add_edge_pointer(self, node_id: int, edge_type: int, shard_id: int) -> None:
        with self._lock:
            shards = self._edge_pointers.setdefault((node_id, edge_type), [])
            if shard_id not in shards:
                shards.append(shard_id)

    def promote_node_active(self, node_id: int, shard_id: int) -> None:
        """Rewrite an ACTIVE_LOGSTORE node pointer to a concrete shard
        (called when the LogStore is frozen into that shard)."""
        with self._lock:
            shards = self._node_pointers.get(node_id)
            if shards and ACTIVE_LOGSTORE in shards:
                shards.remove(ACTIVE_LOGSTORE)
                if shard_id not in shards:
                    shards.append(shard_id)

    def promote_edge_active(self, node_id: int, edge_type: int, shard_id: int) -> None:
        """Edge-pointer analogue of :meth:`promote_node_active`."""
        with self._lock:
            shards = self._edge_pointers.get((node_id, edge_type))
            if shards and ACTIVE_LOGSTORE in shards:
                shards.remove(ACTIVE_LOGSTORE)
                if shard_id not in shards:
                    shards.append(shard_id)

    # ------------------------------------------------------------------
    # Pruning (called when the pointed-to data is physically gone)
    # ------------------------------------------------------------------

    def _remove_node_pointer_locked(self, node_id: int, shard_id: int) -> None:
        shards = self._node_pointers.get(node_id)
        if shards and shard_id in shards:
            shards.remove(shard_id)
            if not shards:
                del self._node_pointers[node_id]

    def _remove_edge_pointer_locked(
        self, node_id: int, edge_type: int, shard_id: int
    ) -> None:
        shards = self._edge_pointers.get((node_id, edge_type))
        if shards and shard_id in shards:
            shards.remove(shard_id)
            if not shards:
                del self._edge_pointers[(node_id, edge_type)]

    def remove_node_pointer(self, node_id: int, shard_id: int) -> None:
        """Drop one node pointer if present (no-op otherwise)."""
        with self._lock:
            self._remove_node_pointer_locked(node_id, shard_id)

    def remove_edge_pointer(self, node_id: int, edge_type: int, shard_id: int) -> None:
        """Drop one edge pointer if present (no-op otherwise)."""
        with self._lock:
            self._remove_edge_pointer_locked(node_id, edge_type, shard_id)

    def drop_active(self) -> None:
        """Remove every remaining ACTIVE_LOGSTORE pointer.

        Called at the end of a freeze, *after* pointers for the frozen
        contents were promoted: anything still pointing at the (about to
        be replaced) LogStore refers to data that did not survive --
        physically deleted edge buckets or tombstoned nodes -- and would
        otherwise route queries to a fresh empty LogStore forever.

        One lock acquisition covers the whole sweep so a concurrent
        reader sees either the pre-freeze or post-freeze table, never a
        half-swept one.
        """
        with self._lock:
            for node_id in list(self._node_pointers):
                self._remove_node_pointer_locked(node_id, ACTIVE_LOGSTORE)
            for (node_id, edge_type) in list(self._edge_pointers):
                self._remove_edge_pointer_locked(node_id, edge_type, ACTIVE_LOGSTORE)

    def remap(
        self,
        node_fn: Callable[[int, List[int]], List[int]],
        edge_fn: Callable[[Tuple[int, int], List[int]], List[int]],
    ) -> None:
        """Rewrite every pointer list through the given callbacks
        (compaction uses this to collapse frozen-shard ids).

        ``node_fn(node_id, shard_ids)`` / ``edge_fn(key, shard_ids)``
        return the replacement list; an empty result drops the entry.
        Runs under one lock acquisition so concurrent readers never see
        a partially rewritten table; the callbacks must not call back
        into this table.
        """
        with self._lock:
            for node_id in list(self._node_pointers):
                rewritten = node_fn(node_id, self._node_pointers[node_id])
                if rewritten:
                    self._node_pointers[node_id] = rewritten
                else:
                    del self._node_pointers[node_id]
            for key in list(self._edge_pointers):
                rewritten = edge_fn(key, self._edge_pointers[key])
                if rewritten:
                    self._edge_pointers[key] = rewritten
                else:
                    del self._edge_pointers[key]

    # ------------------------------------------------------------------
    # Serialization (see repro.core.persistence)
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Dict[str, List[int]]]:
        """JSON-serializable snapshot of both pointer maps."""
        with self._lock:
            return {
                "nodes": {str(k): list(v) for k, v in self._node_pointers.items()},
                "edges": {
                    f"{n}:{t}": list(v)
                    for (n, t), v in self._edge_pointers.items()
                },
            }

    @classmethod
    def from_payload(cls, payload: Dict[str, Dict[str, List[int]]]) -> "UpdatePointerTable":
        """Rebuild a table from a :meth:`to_payload` snapshot."""
        table = cls()
        with table._lock:
            table._node_pointers = {
                int(k): list(v) for k, v in payload["nodes"].items()
            }
            table._edge_pointers = {
                (int(k.split(":")[0]), int(k.split(":")[1])): list(v)
                for k, v in payload["edges"].items()
            }
        return table

    # ------------------------------------------------------------------
    # Query-time chasing
    # ------------------------------------------------------------------

    def node_shards(self, node_id: int) -> List[int]:
        """Shards (in append order) with newer property data for the node."""
        _POINTER_LOOKUPS.inc()
        with self._lock:
            return list(self._node_pointers.get(node_id, []))

    def edge_shards(self, node_id: int, edge_type: int) -> List[int]:
        """Shards (in append order) with newer edges of this type."""
        _POINTER_LOOKUPS.inc()
        with self._lock:
            return list(self._edge_pointers.get((node_id, edge_type), []))

    def all_edge_shards(self, node_id: int) -> List[int]:
        """Union of edge-pointer targets across every edge type."""
        _POINTER_LOOKUPS.inc()
        shards: List[int] = []
        seen: Set[int] = set()
        with self._lock:
            for (pointer_node, _), targets in self._edge_pointers.items():
                if pointer_node != node_id:
                    continue
                for shard in targets:
                    if shard not in seen:
                        seen.add(shard)
                        shards.append(shard)
        return shards

    def fragment_count(self, node_id: int) -> int:
        """Number of *additional* shards the node's data spans (the
        home shard itself is not counted)."""
        with self._lock:
            shards: Set[int] = set(self._node_pointers.get(node_id, []))
            for (pointer_node, _), targets in self._edge_pointers.items():
                if pointer_node == node_id:
                    shards.update(targets)
            return len(shards)

    def tracked_nodes(self) -> Set[int]:
        with self._lock:
            nodes = set(self._node_pointers)
            nodes.update(node for node, _ in self._edge_pointers)
            return nodes

    def serialized_size_bytes(self) -> int:
        """Footprint of the (uncompressed) pointer tables."""
        with self._lock:
            node_bytes = sum(8 + 4 * len(v) for v in self._node_pointers.values())
            edge_bytes = sum(12 + 4 * len(v) for v in self._edge_pointers.values())
            return node_bytes + edge_bytes

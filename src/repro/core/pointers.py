"""Fanned-update pointers (§3.5, Figure 3).

As new data for a node is appended after its original shard was
compressed, the node's data becomes *fragmented* across shards. Update
pointers are stored only at the shard where the node first occurs and
chain together every later shard holding data for that node, so a query
touches exactly the shards it needs instead of broadcasting to all.

The pointers are kept uncompressed (updates are a small fraction of
real workloads, so the overhead is minimal).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

ACTIVE_LOGSTORE = -1
"""Pseudo shard id for the active LogStore; promoted to a concrete
shard id when the LogStore is frozen."""


class UpdatePointerTable:
    """Pointers from (NodeID, kind) to the shards holding newer data.

    ``kind`` distinguishes node-property fragments from edge fragments:
    edge pointers are per (NodeID, EdgeType) so an edge query follows
    only the shards that actually received edges of that type.
    """

    def __init__(self):
        self._node_pointers: Dict[int, List[int]] = {}
        self._edge_pointers: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    # Registration (called when a LogStore is frozen into a new shard)
    # ------------------------------------------------------------------

    def add_node_pointer(self, node_id: int, shard_id: int) -> None:
        shards = self._node_pointers.setdefault(node_id, [])
        if shard_id not in shards:
            shards.append(shard_id)

    def add_edge_pointer(self, node_id: int, edge_type: int, shard_id: int) -> None:
        shards = self._edge_pointers.setdefault((node_id, edge_type), [])
        if shard_id not in shards:
            shards.append(shard_id)

    def promote_node_active(self, node_id: int, shard_id: int) -> None:
        """Rewrite an ACTIVE_LOGSTORE node pointer to a concrete shard
        (called when the LogStore is frozen into that shard)."""
        shards = self._node_pointers.get(node_id)
        if shards and ACTIVE_LOGSTORE in shards:
            shards.remove(ACTIVE_LOGSTORE)
            if shard_id not in shards:
                shards.append(shard_id)

    def promote_edge_active(self, node_id: int, edge_type: int, shard_id: int) -> None:
        """Edge-pointer analogue of :meth:`promote_node_active`."""
        shards = self._edge_pointers.get((node_id, edge_type))
        if shards and ACTIVE_LOGSTORE in shards:
            shards.remove(ACTIVE_LOGSTORE)
            if shard_id not in shards:
                shards.append(shard_id)

    # ------------------------------------------------------------------
    # Pruning (called when the pointed-to data is physically gone)
    # ------------------------------------------------------------------

    def remove_node_pointer(self, node_id: int, shard_id: int) -> None:
        """Drop one node pointer if present (no-op otherwise)."""
        shards = self._node_pointers.get(node_id)
        if shards and shard_id in shards:
            shards.remove(shard_id)
            if not shards:
                del self._node_pointers[node_id]

    def remove_edge_pointer(self, node_id: int, edge_type: int, shard_id: int) -> None:
        """Drop one edge pointer if present (no-op otherwise)."""
        shards = self._edge_pointers.get((node_id, edge_type))
        if shards and shard_id in shards:
            shards.remove(shard_id)
            if not shards:
                del self._edge_pointers[(node_id, edge_type)]

    def drop_active(self) -> None:
        """Remove every remaining ACTIVE_LOGSTORE pointer.

        Called at the end of a freeze, *after* pointers for the frozen
        contents were promoted: anything still pointing at the (about to
        be replaced) LogStore refers to data that did not survive --
        physically deleted edge buckets or tombstoned nodes -- and would
        otherwise route queries to a fresh empty LogStore forever.
        """
        for node_id in list(self._node_pointers):
            self.remove_node_pointer(node_id, ACTIVE_LOGSTORE)
        for (node_id, edge_type) in list(self._edge_pointers):
            self.remove_edge_pointer(node_id, edge_type, ACTIVE_LOGSTORE)

    # ------------------------------------------------------------------
    # Query-time chasing
    # ------------------------------------------------------------------

    def node_shards(self, node_id: int) -> List[int]:
        """Shards (in append order) with newer property data for the node."""
        return list(self._node_pointers.get(node_id, []))

    def edge_shards(self, node_id: int, edge_type: int) -> List[int]:
        """Shards (in append order) with newer edges of this type."""
        return list(self._edge_pointers.get((node_id, edge_type), []))

    def all_edge_shards(self, node_id: int) -> List[int]:
        """Union of edge-pointer targets across every edge type."""
        shards: List[int] = []
        seen: Set[int] = set()
        for (pointer_node, _), targets in self._edge_pointers.items():
            if pointer_node != node_id:
                continue
            for shard in targets:
                if shard not in seen:
                    seen.add(shard)
                    shards.append(shard)
        return shards

    def fragment_count(self, node_id: int) -> int:
        """Number of *additional* shards the node's data spans (the
        home shard itself is not counted)."""
        shards: Set[int] = set(self._node_pointers.get(node_id, []))
        for (pointer_node, _), targets in self._edge_pointers.items():
            if pointer_node == node_id:
                shards.update(targets)
        return len(shards)

    def tracked_nodes(self) -> Set[int]:
        nodes = set(self._node_pointers)
        nodes.update(node for node, _ in self._edge_pointers)
        return nodes

    def serialized_size_bytes(self) -> int:
        """Footprint of the (uncompressed) pointer tables."""
        node_bytes = sum(8 + 4 * len(v) for v in self._node_pointers.values())
        edge_bytes = sum(12 + 4 * len(v) for v in self._edge_pointers.values())
        return node_bytes + edge_bytes

"""The ZipG graph store: Table 1's API on compressed shards (§3, §4).

A :class:`ZipG` instance owns:

* the initial hash-partitioned compressed shards (§4.1);
* additional compressed shards produced by LogStore freezes;
* the single active query-optimized :class:`~repro.core.logstore.LogStore`;
* one :class:`~repro.core.pointers.UpdatePointerTable` per *initial*
  shard -- a node's pointers live at the shard its NodeID hashes to, so
  queries route by hash and then follow pointers to exactly the shards
  holding that node's fragments (fanned updates, §3.5).

Reads execute directly on the compressed representation; writes go to
the LogStore, which is frozen into a new compressed shard when it
crosses the size threshold.
"""

from __future__ import annotations

# zipg: query-api
# zipg: cache-backed

import bisect
import weakref
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.delimiters import DelimiterMap
from repro.core.errors import NodeNotFound
from repro.core.executor import ShardExecutor
from repro.core.logstore import LogStore
from repro.core.model import Edge, EdgeData, GraphData, PropertyList, WILDCARD
from repro.core.pointers import ACTIVE_LOGSTORE, UpdatePointerTable
from repro.core.shard import CompressedShard
from repro.perf.cache import HotSetCache, new_cache_tag
from repro.perf.epoch import Epoch
from repro.succinct.stats import AccessStats

EdgeTypeArg = Union[int, str]  # an EdgeType or the WILDCARD string

_KNUTH = 2654435761


def _hash_partition(node_id: int, num_shards: int) -> int:
    """Hash-partitioning of NodeIDs onto shards (§4.1)."""
    return ((node_id * _KNUTH) & 0xFFFFFFFF) % num_shards


def _publish_store_metrics(store: "ZipG") -> None:
    """Expose the store's access counters through the shared metrics
    registry (weakly -- the collector unregisters itself once the store
    is collected, so building many stores does not leak)."""
    ref = weakref.ref(store)

    def _collect() -> Optional[Dict[str, float]]:
        live = ref()
        if live is None:
            return None
        metrics = live.aggregate_stats().to_metrics(prefix="zipg_access_")
        metrics["zipg_pointer_hops_total"] = float(live._pointer_hops)
        return metrics

    obs.get_registry().register_collector(_collect)


class EdgeRecord:
    """A merged view over every fragment of a (NodeID, EdgeType) record.

    For un-updated records this is a single compressed fragment and all
    accessors delegate directly (the common case the paper optimizes
    for). Records fragmented across shards by updates present a single
    timestamp-ordered TimeOrder space spanning all live fragments.
    """

    def __init__(
        self, node_id: int, edge_type: EdgeTypeArg, fragments: Sequence
    ) -> None:
        self.node_id = node_id
        self.edge_type = edge_type
        self.fragments = list(fragments)
        # (ts, dst, frag, local) -- dst in the sort key matches the
        # (timestamp, destination) order used by the EdgeFile bucket
        # sort and the LogStore insertion point, so timestamp ties
        # resolve identically across fragment boundaries.
        self._index: Optional[List[Tuple[int, int, int, int]]] = None
        self._direct: Optional[bool] = None

    @property
    def is_empty(self) -> bool:
        return self.edge_count == 0

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    def _resolve_layout(self) -> None:
        if self._direct is not None:
            return
        if len(self.fragments) == 1 and self.fragments[0].deleted_count() == 0:
            self._direct = True
            return
        self._direct = False
        merged: List[Tuple[int, int, int, int]] = []
        for fragment_index, fragment in enumerate(self.fragments):
            # One batched timestamp/destination read per fragment, not
            # one random access per edge.
            timestamps = fragment.all_timestamps()
            destinations = fragment.all_destinations()
            for local in range(fragment.edge_count):
                if not fragment.deleted(local):
                    merged.append(
                        (
                            timestamps[local],
                            destinations[local],
                            fragment_index,
                            local,
                        )
                    )
        merged.sort()
        self._index = merged

    @property
    def edge_count(self) -> int:
        """Number of live edges across all fragments."""
        self._resolve_layout()
        if self._direct:
            return self.fragments[0].edge_count
        return len(self._index)

    def _locate(self, time_order: int) -> Tuple:
        self._resolve_layout()
        if self._direct:
            return (self.fragments[0], time_order)
        if not 0 <= time_order < len(self._index):
            raise IndexError(f"TimeOrder {time_order} out of range")
        _, _, fragment_index, local = self._index[time_order]
        return (self.fragments[fragment_index], local)

    def timestamp_at(self, time_order: int) -> int:
        """Timestamp of the live edge at ``time_order``."""
        fragment, local = self._locate(time_order)
        return fragment.timestamp_at(local)

    def destination_at(self, time_order: int) -> int:
        """Destination NodeID of the live edge at ``time_order``."""
        fragment, local = self._locate(time_order)
        return fragment.destination_at(local)

    def data_at(self, time_order: int, with_properties: bool = True) -> EdgeData:
        """The EdgeData triplet of the live edge at ``time_order``."""
        fragment, local = self._locate(time_order)
        return fragment.edge_data_at(local, with_properties)

    def time_range(
        self, t_low: Optional[int] = None, t_high: Optional[int] = None
    ) -> Tuple[int, int]:
        """TimeOrders ``[begin, end)`` with timestamp in ``[t_low, t_high)``."""
        self._resolve_layout()
        if self._direct:
            return self.fragments[0].time_range(t_low, t_high)
        timestamps = [entry[0] for entry in self._index]
        begin = 0 if t_low is None else bisect.bisect_left(timestamps, t_low)
        end = len(timestamps) if t_high is None else bisect.bisect_left(timestamps, t_high)
        return (begin, end)

    def destinations(self) -> List[int]:
        """All live destination IDs, in time order."""
        self._resolve_layout()
        if self._direct:
            return self.fragments[0].all_destinations()
        return [entry[1] for entry in self._index]


class ZipG:
    """A single-logical-store ZipG instance (Table 1 API).

    Build one with :meth:`compress`. In distributed experiments the
    cluster layer (:mod:`repro.cluster`) places this store's shards on
    simulated servers; all query logic lives here.
    """

    def __init__(
        self,
        delimiters: DelimiterMap,
        shards: List[CompressedShard],
        alpha: int,
        logstore_threshold_bytes: int,
        max_workers: Optional[int] = None,
        encoding: str = "succinct",
    ) -> None:
        self._delimiters = delimiters
        self._num_initial = len(shards)
        self._shards = list(shards)
        self._pointer_tables = [UpdatePointerTable() for _ in shards]
        self._logstore = LogStore()
        self._alpha = alpha
        self._threshold = logstore_threshold_bytes
        # Flat-file codec new shards (LogStore freezes, compaction) are
        # built with; recorded in the v4 store manifest.
        self.encoding = encoding
        # How this store's shards arrived in memory ("memory" =
        # compressed in-process, "eager" / "mmap" = load_store modes)
        # and how many bytes are memory-mapped rather than resident.
        self.load_mode = "memory"
        self.mapped_bytes = 0
        # mmap keepalive: load_store(mode="mmap") parks its open maps
        # here because every shard holds zero-copy views into them.
        self._mmaps: List[object] = []
        self.executor = ShardExecutor(max_workers)
        self.freeze_count = 0
        # Optional write-ahead log (repro.core.wal): attached by the
        # persistence layer; every mutation is logged before it is
        # applied so a crash loses at most the in-flight record.
        self._wal: Optional[object] = None
        # Pointer hops actually followed by queries on this store (the
        # §3.5 fragmentation cost the per-layer breakdown attributes).
        self._pointer_hops = 0
        # Store-level epoch: bumped by every mutation (append, delete,
        # freeze, compaction -- WAL replay routes through the same
        # _apply_* methods). Store-level cached results embed it.
        self.epoch = Epoch()
        # Optional hot-set cache (repro.perf); see enable_cache().
        self._cache: Optional[HotSetCache] = None
        self._cache_tag = 0
        self._coalesce_window_s = 0.0
        # Erasure-coded fragment stores this process serves, keyed by
        # server id (repro.ec; attached by the cluster layer or the
        # serve-shard CLI).  The ec_fetch_fragment / ec_store_fragment
        # RPC ops resolve through this mapping; empty means this
        # process holds no fragments.
        self.ec_fragment_stores: Dict[int, object] = {}
        # Fan-out failure-semantics knobs (plumbed from the cluster
        # layer); passed to every executor.map a query issues.
        self.retries = 0
        self.backoff_s = 0.0
        self.deadline_s: Optional[float] = None
        _publish_store_metrics(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def compress(
        cls,
        graph: GraphData,
        num_shards: int = 4,
        alpha: int = 32,
        logstore_threshold_bytes: int = 1 << 20,
        extra_property_ids: Optional[Sequence[str]] = None,
        max_workers: Optional[int] = None,
        encoding: str = "succinct",
    ) -> "ZipG":
        """Compress ``graph`` into a ZipG store (the paper's
        ``g = compress(graph)``).

        Args:
            graph: the input property graph.
            num_shards: initial shard count (default one per core in
                the paper; a small constant here).
            alpha: Succinct sampling rate (space/latency knob).
            logstore_threshold_bytes: LogStore size that triggers a
                freeze into a new compressed shard.
            extra_property_ids: PropertyIDs that future appends may use
                but which do not occur in the initial graph (the
                delimiter map is immutable once built).
            max_workers: width of the store's shard fan-out thread pool
                (``None`` -> per-core default, ``1`` -> serial).
            encoding: flat-file codec for every shard (see
                :mod:`repro.succinct.encodings`; ``"succinct"`` is the
                paper's representation, ``"offsets"`` the Log(Graph)-
                style fixed-width ablation codec).
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        property_ids = set(graph.all_property_ids())
        if extra_property_ids:
            property_ids.update(extra_property_ids)
        delimiters = DelimiterMap(property_ids)

        node_parts: List[Dict[int, PropertyList]] = [dict() for _ in range(num_shards)]
        edge_parts: List[Dict[Tuple[int, int], List[Edge]]] = [
            dict() for _ in range(num_shards)
        ]
        for node_id in graph.node_ids():
            shard = _hash_partition(node_id, num_shards)
            node_parts[shard][node_id] = graph.node_properties(node_id)
            for edge_type in graph.edge_types_of(node_id):
                edge_parts[shard][(node_id, edge_type)] = graph.edges_of(
                    node_id, edge_type
                )
        shards = [
            CompressedShard(i, node_parts[i], edge_parts[i], delimiters,
                            alpha=alpha, encoding=encoding)
            for i in range(num_shards)
        ]
        return cls(delimiters, shards, alpha, logstore_threshold_bytes,
                   max_workers=max_workers, encoding=encoding)

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    @property
    def num_initial_shards(self) -> int:
        return self._num_initial

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[CompressedShard]:
        return list(self._shards)

    @property
    def logstore(self) -> LogStore:
        return self._logstore

    @property
    def delimiters(self) -> DelimiterMap:
        return self._delimiters

    # ------------------------------------------------------------------
    # Hot-set cache (repro.perf)
    # ------------------------------------------------------------------

    @property
    def cache(self) -> Optional[HotSetCache]:
        return self._cache

    def enable_cache(
        self, budget_bytes: int, coalesce_window_s: float = 0.0
    ) -> HotSetCache:
        """Front the hot read paths with a byte-budgeted hot-set cache.

        One shared :class:`HotSetCache` covers store-level results
        (adjacency lists, fan-out searches) and, through each shard's
        ``attach_cache``, the NodeFile/EdgeFile/Succinct reads beneath
        them. Keys embed the relevant epoch, so every mutation
        invalidates in O(1). Budget accounting is global: the cache
        never holds more than ``budget_bytes``.

        Args:
            budget_bytes: total byte budget (a useful rule of thumb is
                <= 10% of :meth:`storage_footprint_bytes`).
            coalesce_window_s: when > 0, concurrent cache-missed
                extracts inside one shard coalesce into a single
                batched-NPA kernel call.
        """
        cache = HotSetCache(budget_bytes, name="zipg")
        self._cache = cache
        self._cache_tag = new_cache_tag()
        self._coalesce_window_s = float(coalesce_window_s)
        for shard in self._shards:
            shard.attach_cache(cache, coalesce_window_s=coalesce_window_s)
        return cache

    def disable_cache(self) -> None:
        """Detach the cache everywhere; reads revert to the pre-cache
        paths (byte-identical behavior)."""
        self._cache = None
        for shard in self._shards:
            shard.detach_cache()

    def route(self, node_id: int) -> int:
        """Initial shard a NodeID hashes to (query entry point)."""
        return _hash_partition(node_id, self._num_initial)

    def _table(self, node_id: int) -> UpdatePointerTable:
        return self._pointer_tables[self.route(node_id)]

    def _node_locations_newest_first(self, node_id: int) -> List:
        """Stores that may hold property data for ``node_id``."""
        with obs.span("pointer.node_chase", layer="pointer"):
            shard_ids = self._table(node_id).node_shards(node_id)
        self._pointer_hops += len(shard_ids)
        locations: List = [self._shards[self.route(node_id)]]
        for shard_id in shard_ids:
            locations.append(
                self._logstore if shard_id == ACTIVE_LOGSTORE else self._shards[shard_id]
            )
        locations.reverse()  # home first + chronological pointers -> newest first
        return locations

    def _edge_locations(self, node_id: int, edge_type: EdgeTypeArg) -> List:
        """Stores that may hold edge fragments for (node, type)."""
        table = self._table(node_id)
        with obs.span("pointer.edge_chase", layer="pointer"):
            if edge_type == WILDCARD:
                shard_ids = table.all_edge_shards(node_id)
            else:
                shard_ids = table.edge_shards(node_id, int(edge_type))
        self._pointer_hops += len(shard_ids)
        locations: List = [self._shards[self.route(node_id)]]
        for shard_id in shard_ids:
            locations.append(
                self._logstore if shard_id == ACTIVE_LOGSTORE else self._shards[shard_id]
            )
        return locations

    # ------------------------------------------------------------------
    # Node queries (Table 1)
    # ------------------------------------------------------------------

    @obs.traced("graph_store.get_node_property", layer="graph_store")
    def get_node_property(
        self, node_id: int, property_ids: Union[str, Sequence[str]] = WILDCARD
    ) -> PropertyList:
        """Properties of ``node_id``: all of them (wildcard), one, or a
        subset. Raises :class:`NodeNotFound` if no live version exists."""
        if property_ids == WILDCARD:
            wanted = None
        elif isinstance(property_ids, str):
            wanted = [property_ids]
        else:
            wanted = list(property_ids)
        for location in self._node_locations_newest_first(node_id):
            if location.node_live(node_id):
                return location.get_properties(node_id, wanted)
        raise NodeNotFound(node_id)

    @obs.traced("graph_store.has_node", layer="graph_store")
    def has_node(self, node_id: int) -> bool:
        """Whether a live version of ``node_id`` exists anywhere."""
        return any(
            location.node_live(node_id)
            for location in self._node_locations_newest_first(node_id)
        )

    @obs.traced("graph_store.get_node_ids", layer="graph_store")
    def get_node_ids(self, property_list: PropertyList) -> List[int]:
        """NodeIDs whose properties match every pair in ``property_list``.

        The one query that must touch *all* shards (§4.1 footnote 5);
        the shard searches fan out across the store's thread pool.
        """
        cache = self._cache
        if cache is None:
            return self._search_nodes(property_list)
        key = (
            "gs.nodeids",
            self._cache_tag,
            self.epoch.value,
            tuple(sorted(property_list.items())),
        )
        return list(
            cache.get_or_load(key, lambda: self._search_nodes(property_list))
        )

    # zipg: span-free  (always runs under get_node_ids's span)
    def _search_nodes(self, property_list: PropertyList) -> List[int]:
        locations: List = [self._logstore] + self._shards
        hits = self.executor.map(
            lambda location: location.find_live_nodes(property_list),
            locations,
            stats_of=lambda location: location.stats,
            retries=self.retries,
            backoff_s=self.backoff_s,
            deadline_s=self.deadline_s,
        )
        result: set = set()
        for shard_hits in hits:
            result.update(shard_hits)
        return sorted(result)

    @obs.traced("graph_store.get_neighbor_ids", layer="graph_store")
    def get_neighbor_ids(
        self,
        node_id: int,
        edge_type: EdgeTypeArg = WILDCARD,
        property_list: Optional[PropertyList] = None,
    ) -> List[int]:
        """Destinations of ``node_id``'s edges of ``edge_type``,
        optionally filtered by destination-node properties.

        Implemented join-free (§2.2): fetch neighbors, then probe each
        neighbor's properties by random access.
        """
        cache = self._cache
        if cache is None:
            destinations = self.get_edge_record(node_id, edge_type).destinations()
        else:
            # Store-level key: the merged record spans shards *and* the
            # LogStore, so only the store epoch safely covers it.
            key = ("gs.nbr", self._cache_tag, self.epoch.value, node_id, edge_type)
            destinations = list(
                cache.get_or_load(
                    key,
                    lambda: self.get_edge_record(node_id, edge_type).destinations(),
                )
            )
        if not property_list:
            return destinations
        matches = []
        for destination in destinations:
            try:
                properties = self.get_node_property(
                    destination, list(property_list)
                )
            except NodeNotFound:
                continue
            if all(properties.get(k) == v for k, v in property_list.items()):
                matches.append(destination)
        return matches

    # ------------------------------------------------------------------
    # Edge queries (Table 1)
    # ------------------------------------------------------------------

    @obs.traced("graph_store.get_edge_record", layer="graph_store")
    def get_edge_record(self, node_id: int, edge_type: EdgeTypeArg = WILDCARD) -> EdgeRecord:
        """The merged EdgeRecord for (node, type) -- or for all types
        when ``edge_type`` is the wildcard."""
        fragments = []
        for location in self._edge_locations(node_id, edge_type):
            if edge_type == WILDCARD:
                fragments.extend(location.edge_fragments(node_id))
            else:
                fragment = location.edge_fragment(node_id, int(edge_type))
                if fragment is not None:
                    fragments.append(fragment)
        return EdgeRecord(node_id, edge_type, fragments)

    @obs.traced("graph_store.get_edge_range", layer="graph_store")
    def get_edge_range(
        self,
        record: EdgeRecord,
        t_low: Optional[int] = None,
        t_high: Optional[int] = None,
    ) -> Tuple[int, int]:
        """TimeOrder range of edges with timestamps in ``[t_low, t_high)``
        (wildcards via ``None``)."""
        return record.time_range(t_low, t_high)

    @obs.traced("graph_store.get_edge_data", layer="graph_store")
    def get_edge_data(
        self, record: EdgeRecord, time_order: int, with_properties: bool = True
    ) -> EdgeData:
        """The (destination, timestamp, PropertyList) triplet at
        ``time_order`` within ``record``."""
        return record.data_at(time_order, with_properties)

    @obs.traced("graph_store.find_edges", layer="graph_store")
    def find_edges(
        self, property_id: str, value: str
    ) -> List[Tuple[int, int, EdgeData]]:
        """All live edges whose PropertyList has ``property_id == value``
        (the §3.3 edge-property-search extension; like ``get_node_ids``
        it touches every shard plus the LogStore).

        Returns ``(source, edge_type, EdgeData)`` triples sorted by
        (source, edge_type, timestamp, destination).
        """
        cache = self._cache
        if cache is None:
            return self._search_edges(property_id, value)
        key = ("gs.edges", self._cache_tag, self.epoch.value, property_id, value)
        return list(
            cache.get_or_load(
                key, lambda: self._search_edges(property_id, value)
            )
        )

    # zipg: span-free  (always runs under find_edges's span)
    def _search_edges(
        self, property_id: str, value: str
    ) -> List[Tuple[int, int, EdgeData]]:
        locations: List = self._shards + [self._logstore]
        hits = self.executor.map(
            lambda location: location.find_edges_by_property(property_id, value),
            locations,
            stats_of=lambda location: location.stats,
            retries=self.retries,
            backoff_s=self.backoff_s,
            deadline_s=self.deadline_s,
        )
        results = [hit for shard_hits in hits for hit in shard_hits]
        results.sort(key=lambda hit: (hit[0], hit[1], hit[2].timestamp, hit[2].destination))
        return results

    # ------------------------------------------------------------------
    # Updates (Table 1)
    # ------------------------------------------------------------------

    def attach_wal(self, wal: object) -> None:
        """Attach a :class:`repro.core.wal.WriteAheadLog`: from now on
        every mutation is durably logged before it is applied."""
        self._wal = wal

    def detach_wal(self) -> None:
        self._wal = None

    @property
    def wal(self) -> Optional[object]:
        return self._wal

    def _wal_log(self, op: str, args: List) -> None:
        if self._wal is not None:
            self._wal.append_record(op, args)  # type: ignore[attr-defined]

    @obs.traced("graph_store.append_node", layer="graph_store")
    def append_node(self, node_id: int, properties: PropertyList) -> None:
        """Append a (new version of a) node with its PropertyList."""
        self._wal_log("node", [node_id, dict(properties)])
        self._apply_append_node(node_id, properties)
        self._maybe_freeze()

    def _apply_append_node(self, node_id: int, properties: PropertyList) -> None:
        self.epoch.bump()
        self._logstore.append_node(node_id, properties)
        self._table(node_id).add_node_pointer(node_id, ACTIVE_LOGSTORE)

    @obs.traced("graph_store.append_edge", layer="graph_store")
    def append_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        """Append one edge to the (source, edge_type) EdgeRecord."""
        properties = dict(properties or {})
        self._wal_log("edge", [source, edge_type, destination, timestamp, properties])
        self._apply_append_edge(source, edge_type, destination, timestamp, properties)
        self._maybe_freeze()

    def _apply_append_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int,
        properties: PropertyList,
    ) -> None:
        self.epoch.bump()
        self._logstore.append_edge(
            Edge(source, destination, edge_type, timestamp, dict(properties))
        )
        self._table(source).add_edge_pointer(source, edge_type, ACTIVE_LOGSTORE)

    @obs.traced("graph_store.delete_node", layer="graph_store")
    def delete_node(self, node_id: int) -> bool:
        """Lazily delete every live version of ``node_id``."""
        self._wal_log("del_node", [node_id])
        return self._apply_delete_node(node_id)

    def _apply_delete_node(self, node_id: int) -> bool:
        self.epoch.bump()
        deleted = False
        for location in self._node_locations_newest_first(node_id):
            deleted = location.delete_node(node_id) or deleted
        return deleted

    @obs.traced("graph_store.delete_edge", layer="graph_store")
    def delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        """Lazily delete all (source, edge_type, destination) edges.

        LogStore edge deletes are *physical*; if they emptied the
        (source, edge_type) bucket, the ACTIVE_LOGSTORE pointer is
        pruned so queries stop routing to a store that holds nothing
        (and ``node_fragment_count`` stops overcounting).
        """
        self._wal_log("del_edge", [source, edge_type, destination])
        return self._apply_delete_edge(source, edge_type, destination)

    def _apply_delete_edge(self, source: int, edge_type: int, destination: int) -> int:
        self.epoch.bump()
        deleted = 0
        for location in self._edge_locations(source, edge_type):
            deleted += location.delete_edges(source, edge_type, destination)
        if not self._logstore.has_edge_bucket(source, edge_type):
            self._table(source).remove_edge_pointer(
                source, edge_type, ACTIVE_LOGSTORE
            )
        return deleted

    def apply_wal_record(self, op: str, args: List) -> None:
        """Apply one replayed WAL record (recovery path).

        Replay bypasses WAL logging and the freeze threshold: freezes
        replay *only* where a ``freeze`` record appears, which is where
        they actually happened (auto-freezes logged one too)."""
        if op == "node":
            node_id, properties = args
            self._apply_append_node(int(node_id), dict(properties))
        elif op == "edge":
            source, edge_type, destination, timestamp, properties = args
            self._apply_append_edge(int(source), int(edge_type), int(destination),
                                    int(timestamp), dict(properties))
        elif op == "del_node":
            self._apply_delete_node(int(args[0]))
        elif op == "del_edge":
            source, edge_type, destination = args
            self._apply_delete_edge(int(source), int(edge_type), int(destination))
        elif op == "freeze":
            self._apply_freeze()
        elif op == "compact":
            self._apply_compact()
        else:
            from repro.core.errors import RecoveryError

            raise RecoveryError(f"unknown WAL record op {op!r}")

    @obs.traced("graph_store.update_node", layer="graph_store")
    def update_node(self, node_id: int, properties: PropertyList) -> None:
        """Update = delete followed by append (§2.2)."""
        self.delete_node(node_id)
        self.append_node(node_id, properties)

    @obs.traced("graph_store.update_edge", layer="graph_store")
    def update_edge(
        self,
        source: int,
        edge_type: int,
        destination: int,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        """Update an edge: delete then append (§2.2)."""
        self.delete_edge(source, edge_type, destination)
        self.append_edge(source, edge_type, destination, timestamp, properties)

    # ------------------------------------------------------------------
    # LogStore freeze (fanned updates, §3.5)
    # ------------------------------------------------------------------

    def _maybe_freeze(self) -> None:
        if self._logstore.size_bytes() >= self._threshold:
            self.freeze_logstore()

    def freeze_logstore(self) -> Optional[CompressedShard]:
        """Compress the active LogStore into a new immutable shard and
        promote its ACTIVE pointers to the new shard id.

        Pointers still marked ACTIVE after promotion refer to data that
        did not survive the freeze (physically deleted edge buckets,
        tombstoned nodes); they are dropped rather than left dangling at
        the fresh, empty LogStore.
        """
        self._wal_log("freeze", [])
        return self._apply_freeze()

    def _apply_freeze(self) -> Optional[CompressedShard]:
        self.epoch.bump()
        nodes, edges = self._logstore.live_contents()
        new_shard: Optional[CompressedShard] = None
        if nodes or edges:
            shard_id = len(self._shards)
            new_shard = CompressedShard(
                shard_id, nodes, edges, self._delimiters, alpha=self._alpha,
                encoding=self.encoding,
            )
            if self._cache is not None:
                new_shard.attach_cache(
                    self._cache, coalesce_window_s=self._coalesce_window_s
                )
            self._shards.append(new_shard)
            for node_id in nodes:
                self._table(node_id).promote_node_active(node_id, shard_id)
            for (source, edge_type) in edges:
                self._table(source).promote_edge_active(source, edge_type, shard_id)
        for table in self._pointer_tables:
            table.drop_active()
        self._logstore = LogStore()
        self.freeze_count += 1
        return new_shard

    # ------------------------------------------------------------------
    # Garbage collection (§4.1: the compressed structures are immutable
    # "except periodic garbage collection")
    # ------------------------------------------------------------------

    def compact_frozen_shards(self) -> int:
        """Merge every post-initial (frozen) shard into one, physically
        dropping lazily-deleted data and collapsing fragmentation.

        Node versions collapse to the newest live one; update pointers
        are rewritten so each node needs at most one frozen-shard hop
        afterwards. Returns the number of shards reclaimed.
        """
        self._wal_log("compact", [])
        return self._apply_compact()

    def _apply_compact(self) -> int:
        self.epoch.bump()
        frozen = self._shards[self._num_initial :]
        if not frozen:
            return 0
        merged_nodes: Dict[int, PropertyList] = {}
        merged_edges: Dict[Tuple[int, int], List[Edge]] = {}
        for shard in frozen:  # chronological: later shards hold newer versions
            nodes, edges = shard.live_contents()
            merged_nodes.update(nodes)
            for key, bucket in edges.items():
                merged_edges.setdefault(key, []).extend(bucket)

        new_shard_id = self._num_initial
        new_shards = self._shards[: self._num_initial]
        if merged_nodes or merged_edges:
            merged_shard = CompressedShard(
                new_shard_id, merged_nodes, merged_edges, self._delimiters,
                alpha=self._alpha, encoding=self.encoding,
            )
            if self._cache is not None:
                merged_shard.attach_cache(
                    self._cache, coalesce_window_s=self._coalesce_window_s
                )
            new_shards.append(merged_shard)
        reclaimed = len(self._shards) - len(new_shards)
        self._shards = new_shards

        def rewrite(shard_ids: List[int], present: bool) -> List[int]:
            rewritten: List[int] = []
            for shard_id in shard_ids:
                if shard_id == ACTIVE_LOGSTORE:
                    rewritten.append(ACTIVE_LOGSTORE)
                elif shard_id >= self._num_initial:
                    if present and new_shard_id not in rewritten:
                        rewritten.append(new_shard_id)
                elif shard_id not in rewritten:
                    rewritten.append(shard_id)
            return rewritten

        for table in self._pointer_tables:
            table.remap(
                lambda node_id, shards: rewrite(shards, node_id in merged_nodes),
                lambda key, shards: rewrite(shards, key in merged_edges),
            )
        return reclaimed

    # ------------------------------------------------------------------
    # Introspection: fragmentation, footprint, stats
    # ------------------------------------------------------------------

    def node_fragment_count(self, node_id: int) -> int:
        """Number of shards (incl. the active LogStore) the node's data
        currently spans -- Appendix A's fragmentation metric."""
        pointer_fragments = self._table(node_id).fragment_count(node_id)
        home = self._shards[self.route(node_id)]
        home_has_data = home.has_node(node_id)
        return pointer_fragments + (1 if home_has_data else 0)

    def storage_footprint_bytes(self) -> int:
        """Total memory footprint of the store's representation."""
        total = sum(shard.serialized_size_bytes() for shard in self._shards)
        total += sum(table.serialized_size_bytes() for table in self._pointer_tables)
        total += self._logstore.serialized_size_bytes()
        total += self._delimiters.serialized_size_bytes()
        return total

    def aggregate_stats(self) -> AccessStats:
        """Merged access counters across every shard and the LogStore."""
        merged = AccessStats()
        for shard in self._shards:
            merged.merge(shard.stats)
        merged.merge(self._logstore.stats)
        return merged

    def reset_stats(self) -> None:
        """Zero every shard's and the LogStore's access counters."""
        for shard in self._shards:
            shard.stats.reset()
        self._logstore.stats.reset()

    def snapshot_metrics(self) -> Dict[str, Dict]:
        """Machine-readable metrics snapshot for the bench harness.

        All values are monotone counters, so two snapshots bracketing a
        workload can be diffed field-by-field. ``time_us`` fields are
        zero unless tracing was enabled for the interval (span wall time
        is only measured when spans record).
        """
        access = self.aggregate_stats()
        layer_times = obs.get_tracer().layer_breakdown()

        def _time_us(*layers: str) -> float:
            return sum(layer_times.get(layer, {}).get("time_us", 0.0)
                       for layer in layers)

        logstore_stats = self._logstore.stats.snapshot()
        return {
            "access": access.to_metrics(),
            "layers": {
                "succinct": {
                    "ops": float(access.total_touches
                                 - logstore_stats.total_touches),
                    "npa_hops": float(access.npa_hops),
                    "time_us": _time_us(
                        "succinct", "shard", "nodefile", "edgefile"
                    ),
                },
                "logstore": {
                    "ops": float(logstore_stats.total_touches),
                    "time_us": _time_us("logstore"),
                },
                "pointer": {
                    "ops": float(self._pointer_hops),
                    "time_us": _time_us("pointer"),
                },
                "graph_store": {
                    "time_us": _time_us("graph_store", "executor", "other"),
                },
            },
            "storage": {
                "load_mode": self.load_mode,
                "encoding": self.encoding,
                "mmap_bytes": float(self.mapped_bytes),
            },
        }

"""Lazy deletes (§3.5).

ZipG implements deletes as *lazy deletes* with a bitmap indicating
whether or not a node or an edge has been deleted; updates are a delete
followed by an append. Each compressed shard owns two bitmaps: one over
its sorted node array, one over its shard-wide edge numbering (an
EdgeRecord's metadata carries the base index of its first edge).
"""

from __future__ import annotations

from repro.succinct.bitvector import BitVector


class DeletionIndex:
    """Per-shard node and edge deletion bitmaps.

    These stay *uncompressed* (like the update pointers): they are tiny
    and must support in-place writes without touching the immutable
    compressed files.
    """

    def __init__(self, num_nodes: int, num_edges: int) -> None:
        self._nodes = BitVector(num_nodes)
        self._edges = BitVector(num_edges)

    # Nodes ------------------------------------------------------------

    def delete_node(self, node_index: int) -> None:
        self._nodes.set(node_index)

    def node_deleted(self, node_index: int) -> bool:
        return self._nodes[node_index]

    def num_deleted_nodes(self) -> int:
        return self._nodes.count()

    # Edges ------------------------------------------------------------

    def delete_edge(self, edge_index: int) -> None:
        self._edges.set(edge_index)

    def edge_deleted(self, edge_index: int) -> bool:
        return self._edges[edge_index]

    def num_deleted_edges(self) -> int:
        return self._edges.count()

    def serialized_size_bytes(self) -> int:
        return self._nodes.serialized_size_bytes() + self._edges.serialized_size_bytes()

"""ZipG data model (§2.1) and API value types (§2.2).

The property-graph model: nodes and edges, each with a PropertyList of
(PropertyID, PropertyValue) pairs. Edges are 3-tuples (sourceID,
destinationID, EdgeType) with an optional Timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

WILDCARD = "*"
"""Wildcard argument accepted by ZipG queries for PropertyID, edgeType,
tLo, tHi and timeOrder (§2.2)."""

PropertyList = Dict[str, str]
"""A PropertyList is a collection of (PropertyID, PropertyValue) pairs."""


@dataclass(frozen=True)
class Edge:
    """A directed edge: (sourceID, destinationID, EdgeType) plus an
    optional timestamp and PropertyList."""

    source: int
    destination: int
    edge_type: int
    timestamp: int = 0
    properties: PropertyList = field(default_factory=dict)

    def __post_init__(self):
        if self.edge_type < 0:
            raise ValueError("edge_type must be non-negative")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


@dataclass(frozen=True)
class EdgeData:
    """The (destinationID, timestamp, PropertyList) triplet for one edge
    at a given TimeOrder within an EdgeRecord (§2.2)."""

    destination: int
    timestamp: int
    properties: PropertyList = field(default_factory=dict)


class GraphData:
    """Mutable in-memory property graph, the input to ``compress``.

    This is the *uncompressed* representation applications hand to ZipG
    (and to the baseline stores); it also serves as the ground-truth
    oracle in the test suite.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, PropertyList] = {}
        self._edges: Dict[Tuple[int, int], List[Edge]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node_id: int, properties: Optional[PropertyList] = None) -> None:
        """Add (or replace) a node and its PropertyList."""
        if node_id < 0:
            raise ValueError("node ids must be non-negative")
        self._nodes[node_id] = dict(properties or {})

    def add_edge(
        self,
        source: int,
        destination: int,
        edge_type: int = 0,
        timestamp: int = 0,
        properties: Optional[PropertyList] = None,
    ) -> None:
        """Add a directed edge; endpoints are auto-created if absent."""
        edge = Edge(source, destination, edge_type, timestamp, dict(properties or {}))
        self._nodes.setdefault(source, {})
        self._nodes.setdefault(destination, {})
        key = (source, edge_type)
        self._edges.setdefault(key, []).append(edge)
        self._edge_count += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node_properties(self, node_id: int) -> PropertyList:
        return dict(self._nodes[node_id])

    def edges_of(self, source: int, edge_type: Optional[int] = None) -> List[Edge]:
        """Edges out of ``source`` (of one type, or all types), sorted by
        (timestamp, destination)."""
        if edge_type is None:
            edges: List[Edge] = []
            for (src, _), bucket in self._edges.items():
                if src == source:
                    edges.extend(bucket)
        else:
            edges = list(self._edges.get((source, edge_type), []))
        return sorted(edges, key=lambda e: (e.timestamp, e.destination))

    def edge_types_of(self, source: int) -> List[int]:
        return sorted({etype for (src, etype) in self._edges if src == source})

    def all_edges(self) -> Iterator[Edge]:
        for bucket in self._edges.values():
            yield from bucket

    def all_property_ids(self) -> Set[str]:
        """Every PropertyID occurring on any node or edge."""
        ids: Set[str] = set()
        for properties in self._nodes.values():
            ids.update(properties)
        for bucket in self._edges.values():
            for edge in bucket:
                ids.update(edge.properties)
        return ids

    def degree(self, node_id: int, edge_type: Optional[int] = None) -> int:
        return len(self.edges_of(node_id, edge_type))

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def on_disk_size_bytes(self) -> int:
        """Size of the canonical uncompressed text representation.

        This is the "raw input size" denominator of Figure 5: one line
        per node (``id<TAB>pid=value;...``) and one line per edge
        (``src<TAB>dst<TAB>type<TAB>ts<TAB>pid=value;...``).
        """
        total = 0
        for node_id, properties in self._nodes.items():
            total += len(str(node_id)) + 2  # id, tab, newline
            total += sum(len(k) + len(v) + 2 for k, v in properties.items())
        for bucket in self._edges.values():
            for edge in bucket:
                total += (
                    len(str(edge.source))
                    + len(str(edge.destination))
                    + len(str(edge.edge_type))
                    + len(str(edge.timestamp))
                    + 5
                )
                total += sum(len(k) + len(v) + 2 for k, v in edge.properties.items())
        return total

    # ------------------------------------------------------------------
    # Oracle queries (used by tests and by the reference executor)
    # ------------------------------------------------------------------

    def find_nodes(self, properties: PropertyList) -> List[int]:
        """NodeIDs whose PropertyList matches all given pairs exactly."""
        return sorted(
            node_id
            for node_id, node_props in self._nodes.items()
            if all(node_props.get(k) == v for k, v in properties.items())
        )

    def neighbor_ids(
        self,
        node_id: int,
        edge_type: Optional[int] = None,
        properties: Optional[PropertyList] = None,
    ) -> List[int]:
        """Destinations of ``node_id``'s edges, optionally filtered by
        edge type and by destination-node properties."""
        destinations = [edge.destination for edge in self.edges_of(node_id, edge_type)]
        if properties:
            destinations = [
                dst
                for dst in destinations
                if all(self._nodes.get(dst, {}).get(k) == v for k, v in properties.items())
            ]
        return destinations

"""Data persistence (§4.1).

ZipG stores NodeFiles, EdgeFiles, LogStore contents and the update
pointers on secondary storage as serialized flat files and maps them
into memory on startup. This module provides that durability for the
Python reproduction: :func:`save_store` writes a directory layout, and
:func:`load_store` reconstructs a fully functional :class:`ZipG` from
it.

On-disk layout (format version 2)::

    <root>/
      manifest.json            store-level metadata (alpha, shard ids,
                               delimiter map, thresholds)
      shard-<k>.bin            the shard's serialized compressed
                               structures (NodeFile + EdgeFile Succinct
                               samples/NPA, directories, deletion bitmaps)
      logstore.json            live LogStore contents + tombstones
      pointers.json            per-initial-shard update pointer tables

Shards load straight from their serialized structures -- no
recompression at startup -- matching §4.1, where NodeFiles/EdgeFiles
are persisted as serialized flat files and mapped into memory.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.core.delimiters import DelimiterMap
from repro.core.graph_store import ZipG
from repro.core.logstore import LogStore
from repro.core.model import Edge, PropertyList
from repro.core.pointers import UpdatePointerTable
from repro.core.shard import CompressedShard

MANIFEST_VERSION = 2


def _edge_to_json(edge: Edge) -> List:
    return [edge.source, edge.destination, edge.edge_type, edge.timestamp,
            edge.properties]


def _edge_from_json(row: List) -> Edge:
    source, destination, edge_type, timestamp, properties = row
    return Edge(source, destination, edge_type, timestamp, dict(properties))


def save_store(store: ZipG, root: str) -> None:
    """Persist ``store`` under directory ``root`` (created if needed)."""
    os.makedirs(root, exist_ok=True)
    manifest = {
        "version": MANIFEST_VERSION,
        "alpha": store._alpha,
        "logstore_threshold_bytes": store._threshold,
        "num_initial_shards": store.num_initial_shards,
        "num_shards": store.num_shards,
        "freeze_count": store.freeze_count,
        "property_ids": store.delimiters.property_ids(),
    }
    with open(os.path.join(root, "manifest.json"), "w") as handle:
        json.dump(manifest, handle)

    for shard in store.shards:
        with open(os.path.join(root, f"shard-{shard.shard_id}.bin"), "wb") as handle:
            handle.write(shard.to_bytes())

    log = store.logstore
    log_payload = {
        "nodes": {str(k): v for k, v in log._nodes.items()},
        "edges": {
            f"{src}:{etype}": [_edge_to_json(e) for e in bucket]
            for (src, etype), bucket in log._edges.items()
        },
        "node_tombstones": sorted(log._node_tombstones),
    }
    with open(os.path.join(root, "logstore.json"), "w") as handle:
        json.dump(log_payload, handle)

    pointers = [table.to_payload() for table in store._pointer_tables]
    with open(os.path.join(root, "pointers.json"), "w") as handle:
        json.dump(pointers, handle)


def load_store(root: str) -> ZipG:
    """Reconstruct a :class:`ZipG` persisted with :func:`save_store`."""
    with open(os.path.join(root, "manifest.json")) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(f"unsupported manifest version {manifest.get('version')!r}")

    delimiters = DelimiterMap(manifest["property_ids"])
    shards: List[CompressedShard] = []
    for shard_id in range(manifest["num_shards"]):
        with open(os.path.join(root, f"shard-{shard_id}.bin"), "rb") as handle:
            shards.append(CompressedShard.from_bytes(handle.read(), delimiters))

    initial = shards[: manifest["num_initial_shards"]]
    store = ZipG(delimiters, initial, manifest["alpha"],
                 manifest["logstore_threshold_bytes"])
    # Attach the post-freeze shards (ZipG's constructor only takes the
    # initial set; freezes are replayed structurally).
    for shard in shards[manifest["num_initial_shards"]:]:
        store._shards.append(shard)
    store.freeze_count = manifest["freeze_count"]

    with open(os.path.join(root, "logstore.json")) as handle:
        log_payload = json.load(handle)
    log = LogStore()
    for node_id, properties in log_payload["nodes"].items():
        log.append_node(int(node_id), dict(properties))
    for key, rows in log_payload["edges"].items():
        for row in rows:
            log.append_edge(_edge_from_json(row))
    # Tombstones go through delete_node so the freeze-threshold size
    # accounting excludes the dead payload, exactly as it did pre-save.
    for node_id in log_payload["node_tombstones"]:
        log.delete_node(int(node_id))
    log.stats.reset()
    store._logstore = log

    with open(os.path.join(root, "pointers.json")) as handle:
        pointer_payload = json.load(handle)
    store._pointer_tables = [
        UpdatePointerTable.from_payload(entry) for entry in pointer_payload
    ]
    return store

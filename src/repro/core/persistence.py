"""Crash-safe data persistence (§4.1).

ZipG stores NodeFiles, EdgeFiles, LogStore contents and the update
pointers on secondary storage as serialized flat files and maps them
into memory on startup. This module provides that durability for the
Python reproduction -- with real crash safety:

* :func:`save_store` writes an **atomic snapshot**: data files land
  under a fresh generation number, each is fsync'd and checksummed,
  and the manifest (the only commit point) is published with a
  write-to-temp + atomic-rename.  A crash at *any* instant leaves the
  previously committed snapshot fully intact.
* :func:`load_store` verifies the manifest and every referenced file
  against its recorded CRC -- torn or partial layouts are rejected
  with typed :class:`~repro.core.errors.RecoveryError`\\ s, never
  half-loaded -- then replays the write-ahead log tail
  (:mod:`repro.core.wal`) so every mutation durably logged since the
  snapshot survives the crash too.
* :func:`attach_wal` arms an in-memory store with a WAL under the
  store root, closing the snapshot-to-snapshot loss window.

On-disk layout (format version 3)::

    <root>/
      manifest.json            commit point: store metadata + the file
                               list of generation <g> with per-file
                               CRC32/size + the WAL replay cutoff LSN
      shard-<k>.g<g>.bin       serialized compressed shard structures
      logstore.g<g>.json       live LogStore contents + tombstones
      pointers.g<g>.json       per-initial-shard update pointer tables
      wal.log                  write-ahead log (rotated at each commit)

Shards load straight from their serialized structures -- no
recompression at startup -- matching §4.1, where NodeFiles/EdgeFiles
are persisted as serialized flat files and mapped into memory.

Every step of ``save_store`` and every WAL append carries a
:mod:`repro.chaos` crash point (see :data:`SAVE_CRASH_POINTS`), so the
recovery guarantee -- *load always yields either the pre-save or the
post-save state* -- is exercised by fault-injected tests rather than
assumed.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import chaos, obs
from repro.core.delimiters import DelimiterMap
from repro.core.errors import (
    ManifestCorruptError,
    ManifestMissingError,
    SnapshotCorruptError,
    StoreVersionConflictError,
    UnsupportedVersionError,
)
from repro.core.graph_store import ZipG
from repro.core.logstore import LogStore
from repro.core.pointers import UpdatePointerTable
from repro.core.shard import CompressedShard
from repro.core.wal import (
    WAL_FILENAME,
    WalConfig,
    WriteAheadLog,
    read_records,
    repair_torn_tail,
)

MANIFEST_VERSION = 3

MANIFEST_NAME = "manifest.json"

#: Crash points fired (in order) during :func:`save_store`.  The chaos
#: suite kills the process model at each of them and asserts
#: :func:`load_store` still recovers a consistent store.
SAVE_CRASH_POINTS = (
    "save.begin",          # before any byte is written
    "save.file",           # after each data file (tag: file=<name>)
    "save.data_written",   # all data files durable, manifest not yet
    "save.manifest_tmp",   # manifest temp written, not yet renamed
    "save.committed",      # manifest renamed: snapshot is live
    "save.cleaned",        # old generations removed, WAL rotated
)

_GENERATION_FILE_RE = re.compile(
    r"^(?:shard-\d+|logstore|pointers)\.g(?P<gen>\d+)\.(?:bin|json)$"
)
_LEGACY_FILE_RE = re.compile(r"^(?:shard-\d+\.bin|logstore\.json|pointers\.json)$")


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _write_file(root: str, name: str, data: bytes, fsync: bool) -> Dict[str, int]:
    """Write one snapshot file (torn-write injectable) and fsync it."""
    path = os.path.join(root, name)
    with open(path, "wb") as handle:
        chaos.write_bytes(chaos.SITE_SAVE_WRITE, handle, data, file=name)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return {"crc32": _crc32(data), "bytes": len(data)}


def _fsync_dir(root: str) -> None:
    """Make the rename itself durable (POSIX: fsync the directory)."""
    try:
        fd = os.open(root, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename already issued
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_manifest(root: str) -> Optional[Dict]:
    """The committed manifest, parsed; ``None`` if none exists.

    A present-but-unparseable manifest raises ManifestCorruptError --
    the caller decides whether that is fatal (load) or not (save over
    a damaged root is refused so the operator must clean up
    explicitly)."""
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (ValueError, OSError) as exc:
        raise ManifestCorruptError(f"cannot parse {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ManifestCorruptError(f"{path}: manifest is not an object")
    return manifest


def save_store(store: ZipG, root: str, fsync: bool = True) -> None:
    """Persist ``store`` under directory ``root`` (created if needed).

    Atomicity: data files are written under a fresh generation number
    and the manifest rename is the single commit point, so a crash at
    any step leaves the previous snapshot loadable.  After commit the
    store's WAL (if attached under ``root``) is rotated -- its records
    are now covered by the snapshot -- and superseded generation files
    are removed.

    Raises :class:`StoreVersionConflictError` instead of overwriting a
    root whose committed manifest is *newer* than this build's
    :data:`MANIFEST_VERSION` (a mixed-version directory would be
    unrecoverable by either build).
    """
    os.makedirs(root, exist_ok=True)
    previous = _read_manifest(root)
    generation = 1
    if previous is not None:
        found = previous.get("version")
        if isinstance(found, int) and found > MANIFEST_VERSION:
            raise StoreVersionConflictError(
                f"store at {root} has manifest version {found}, newer than "
                f"supported version {MANIFEST_VERSION}; refusing to overwrite"
            )
        prev_gen = previous.get("generation")
        if isinstance(prev_gen, int) and prev_gen >= 1:
            generation = prev_gen + 1
    chaos.crash_point("save.begin")

    files: Dict[str, Dict[str, int]] = {}

    def emit(name: str, data: bytes) -> None:
        files[name] = _write_file(root, name, data, fsync)
        chaos.crash_point("save.file", file=name)

    for shard in store.shards:
        emit(f"shard-{shard.shard_id}.g{generation}.bin", shard.to_bytes())
    emit(f"logstore.g{generation}.json",
         json.dumps(store.logstore.to_payload()).encode("utf-8"))
    pointer_payload = [table.to_payload() for table in store._pointer_tables]
    emit(f"pointers.g{generation}.json",
         json.dumps(pointer_payload).encode("utf-8"))
    chaos.crash_point("save.data_written")

    wal = store.wal
    manifest = {
        "version": MANIFEST_VERSION,
        "generation": generation,
        "alpha": store._alpha,
        "logstore_threshold_bytes": store._threshold,
        "num_initial_shards": store.num_initial_shards,
        "num_shards": store.num_shards,
        "freeze_count": store.freeze_count,
        "property_ids": store.delimiters.property_ids(),
        "files": files,
        "wal_last_lsn": wal.last_lsn if isinstance(wal, WriteAheadLog) else 0,
    }
    tmp_name = MANIFEST_NAME + ".tmp"
    _write_file(root, tmp_name, json.dumps(manifest).encode("utf-8"), fsync)
    chaos.crash_point("save.manifest_tmp")
    os.replace(os.path.join(root, tmp_name), os.path.join(root, MANIFEST_NAME))
    if fsync:
        _fsync_dir(root)
    chaos.crash_point("save.committed")

    # The snapshot now covers every WAL record up to wal_last_lsn; a
    # crash before this rotate is harmless (replay skips by LSN).
    if isinstance(wal, WriteAheadLog) and os.path.dirname(
        os.path.abspath(wal.path)
    ) == os.path.abspath(root):
        wal.rotate()
    _remove_stale_files(root, generation)
    chaos.crash_point("save.cleaned")
    obs.counter("zipg_snapshot_saves_total",
                help="committed save_store snapshots").inc()


def _remove_stale_files(root: str, generation: int) -> None:
    """Drop data files from superseded generations (and the v2 legacy
    layout) after a successful commit."""
    for name in os.listdir(root):
        match = _GENERATION_FILE_RE.match(name)
        stale = (match is not None and int(match.group("gen")) != generation)
        stale = stale or _LEGACY_FILE_RE.match(name) is not None
        if stale:
            try:
                os.remove(os.path.join(root, name))
            except OSError:
                # Cleanup is advisory; a leftover stale file is ignored
                # by load_store and retried on the next save.
                continue  # zipg: ignore[ROBUST001]


def _verified_read(root: str, name: str, meta: Dict) -> bytes:
    path = os.path.join(root, name)
    if not os.path.exists(path):
        raise SnapshotCorruptError(f"snapshot file missing: {path}")
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) != meta.get("bytes") or _crc32(data) != meta.get("crc32"):
        raise SnapshotCorruptError(
            f"snapshot file torn or corrupt: {path} "
            f"({len(data)} bytes, crc {_crc32(data):08x}; manifest says "
            f"{meta.get('bytes')} bytes, crc {int(meta.get('crc32', 0)):08x})"
        )
    return data


def load_store(
    root: str,
    wal_config: Optional[WalConfig] = None,
    attach_wal: bool = True,
) -> ZipG:
    """Recover a :class:`ZipG` from ``root``.

    Recovery = last committed snapshot (manifest + checksum-verified
    data files) + replay of every WAL record past the manifest's
    cutoff LSN.  Torn WAL tails are dropped (the in-flight record of a
    crashed append); torn *snapshot* files raise
    :class:`SnapshotCorruptError` -- they cannot occur from a crash
    (the manifest only ever points at fully fsync'd files) and so
    indicate external damage that must not be silently repaired.

    With ``attach_wal`` (default) the recovered store continues
    durable logging into the same ``wal.log``, LSNs continuing where
    the log left off.
    """
    manifest_path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise ManifestMissingError(f"no committed manifest under {root}")
    manifest = _read_manifest(root)
    assert manifest is not None
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise UnsupportedVersionError(
            f"unsupported manifest version {version!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    generation = manifest.get("generation")
    files = manifest.get("files")
    if not isinstance(generation, int) or not isinstance(files, dict):
        raise ManifestCorruptError(f"{manifest_path}: missing generation/files")

    delimiters = DelimiterMap(manifest["property_ids"])
    shards: List[CompressedShard] = []
    for shard_id in range(manifest["num_shards"]):
        name = f"shard-{shard_id}.g{generation}.bin"
        if name not in files:
            raise ManifestCorruptError(f"manifest lists no entry for {name}")
        shards.append(
            CompressedShard.from_bytes(_verified_read(root, name, files[name]),
                                       delimiters)
        )

    initial = shards[: manifest["num_initial_shards"]]
    store = ZipG(delimiters, initial, manifest["alpha"],
                 manifest["logstore_threshold_bytes"])
    # Attach the post-freeze shards (ZipG's constructor only takes the
    # initial set; freezes are replayed structurally).
    for shard in shards[manifest["num_initial_shards"]:]:
        store._shards.append(shard)
    store.freeze_count = manifest["freeze_count"]

    log_name = f"logstore.g{generation}.json"
    if log_name not in files:
        raise ManifestCorruptError(f"manifest lists no entry for {log_name}")
    log_payload = json.loads(_verified_read(root, log_name, files[log_name]))
    store._logstore = LogStore.from_payload(log_payload)

    ptr_name = f"pointers.g{generation}.json"
    if ptr_name not in files:
        raise ManifestCorruptError(f"manifest lists no entry for {ptr_name}")
    pointer_payload = json.loads(_verified_read(root, ptr_name, files[ptr_name]))
    store._pointer_tables = [
        UpdatePointerTable.from_payload(entry) for entry in pointer_payload
    ]

    # WAL replay: everything durably logged past the snapshot cutoff.
    cutoff = manifest.get("wal_last_lsn", 0)
    if not isinstance(cutoff, int):
        raise ManifestCorruptError(f"{manifest_path}: bad wal_last_lsn")
    wal_path = os.path.join(root, WAL_FILENAME)
    records, _torn = read_records(wal_path)
    replayed = 0
    for record in records:
        if record.lsn <= cutoff:
            continue
        store.apply_wal_record(record.op, record.args)
        replayed += 1
    if replayed:
        obs.counter(
            "zipg_wal_replayed_records_total",
            help="WAL records applied during load_store recovery",
        ).inc(replayed)
    obs.counter("zipg_recovery_loads_total",
                help="successful load_store recoveries").inc()

    if attach_wal:
        repair_torn_tail(wal_path)  # new appends need a clean boundary
        last = records[-1].lsn if records else cutoff
        store.attach_wal(
            WriteAheadLog(wal_path, wal_config, next_lsn=max(last, cutoff) + 1)
        )
    return store


@dataclass
class IntegrityIssue:
    """One problem :func:`verify_store` found."""

    kind: str      # "manifest-missing" | "manifest-corrupt" |
                   # "unsupported-version" | "file-corrupt" |
                   # "wal-torn-tail" | "ec-manifest-corrupt" |
                   # "fragment-corrupt"
    detail: str

    def to_payload(self) -> Dict[str, str]:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class IntegrityReport:
    """Typed result of an offline store audit (``repro verify-store``)."""

    root: str
    generation: Optional[int] = None
    files_checked: int = 0
    wal_records: int = 0
    fragments_checked: int = 0
    issues: List[IntegrityIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, kind: str, detail: str) -> None:
        self.issues.append(IntegrityIssue(kind, detail))

    def to_payload(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "ok": self.ok,
            "generation": self.generation,
            "files_checked": self.files_checked,
            "wal_records": self.wal_records,
            "fragments_checked": self.fragments_checked,
            "issues": [issue.to_payload() for issue in self.issues],
        }


def verify_store(root: str, ec_root: Optional[str] = None) -> IntegrityReport:
    """Audit a store root **offline** -- no store is built, nothing is
    repaired, nothing is mutated.

    Checks: committed manifest present and parseable at a supported
    version, every referenced data file matches its recorded CRC/size
    (the :func:`_verified_read` discipline), and the WAL tail is not
    torn.  With ``ec_root``, also verifies the erasure-coding manifest
    and every fragment it places against the fragment CRCs.  Each
    failure becomes one typed :class:`IntegrityIssue`; operators gate
    on :attr:`IntegrityReport.ok`."""
    report = IntegrityReport(root=root)
    try:
        manifest = _read_manifest(root)
    except ManifestCorruptError as exc:
        report.add("manifest-corrupt", str(exc))
        manifest = None
    if manifest is None:
        if not report.issues:
            report.add("manifest-missing",
                       f"no committed manifest under {root}")
    else:
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            report.add(
                "unsupported-version",
                f"manifest version {version!r}; this build reads "
                f"{MANIFEST_VERSION}",
            )
        generation = manifest.get("generation")
        files = manifest.get("files")
        if isinstance(generation, int):
            report.generation = generation
        if not isinstance(files, dict):
            report.add("manifest-corrupt",
                       f"{root}: manifest lists no files object")
            files = {}
        for name in sorted(files):
            try:
                _verified_read(root, name, files[name])
            except SnapshotCorruptError as exc:
                report.add("file-corrupt", str(exc))
            report.files_checked += 1
    records, torn = read_records(os.path.join(root, WAL_FILENAME))
    report.wal_records = len(records)
    if torn:
        report.add(
            "wal-torn-tail",
            f"{os.path.join(root, WAL_FILENAME)}: trailing partial record "
            f"(in-flight append at crash; load_store would drop it)",
        )
    if ec_root is not None:
        _verify_ec_root(ec_root, report)
    return report


def _verify_ec_root(ec_root: str, report: IntegrityReport) -> None:
    """Fragment-layer half of :func:`verify_store`."""
    # Local import: persistence must stay importable below the ec
    # package (which reads snapshots through this module's helpers).
    from repro.core.errors import FragmentCorruptError, RecoveryError
    from repro.ec.striping import (
        EC_MANIFEST_NAME,
        ECManifest,
        FragmentStore,
        server_store_root,
    )

    try:
        manifest = ECManifest.load(os.path.join(ec_root, EC_MANIFEST_NAME))
    except RecoveryError as exc:
        report.add("ec-manifest-corrupt", str(exc))
        return
    for name in sorted(manifest.files):
        stripe = manifest.files[name]
        for index, info in enumerate(stripe.fragments):
            store = FragmentStore(server_store_root(ec_root, info.server))
            try:
                store.read(name, index, info.crc32, info.bytes)
            except FragmentCorruptError as exc:
                report.add("fragment-corrupt", str(exc))
            report.fragments_checked += 1


def attach_wal(store: ZipG, root: str,
               config: Optional[WalConfig] = None) -> WriteAheadLog:
    """Arm ``store`` with a write-ahead log under ``root``.

    Continues LSNs from any existing ``wal.log`` so a later
    :func:`load_store` replays exactly the un-snapshotted suffix."""
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, WAL_FILENAME)
    repair_torn_tail(path)
    records, _torn = read_records(path)
    manifest = _read_manifest(root)
    cutoff = 0
    if manifest is not None and isinstance(manifest.get("wal_last_lsn"), int):
        cutoff = manifest["wal_last_lsn"]
    last = records[-1].lsn if records else 0
    wal = WriteAheadLog(path, config, next_lsn=max(last, cutoff) + 1)
    store.attach_wal(wal)
    return wal

"""Crash-safe data persistence (§4.1).

ZipG stores NodeFiles, EdgeFiles, LogStore contents and the update
pointers on secondary storage as serialized flat files and maps them
into memory on startup. This module provides that durability for the
Python reproduction -- with real crash safety:

* :func:`save_store` writes an **atomic snapshot**: data files land
  under a fresh generation number, each is fsync'd and checksummed,
  and the manifest (the only commit point) is published with a
  write-to-temp + atomic-rename.  A crash at *any* instant leaves the
  previously committed snapshot fully intact.
* :func:`load_store` verifies the manifest and every referenced file
  against its recorded CRC -- torn or partial layouts are rejected
  with typed :class:`~repro.core.errors.RecoveryError`\\ s, never
  half-loaded -- then replays the write-ahead log tail
  (:mod:`repro.core.wal`) so every mutation durably logged since the
  snapshot survives the crash too.
* :func:`attach_wal` arms an in-memory store with a WAL under the
  store root, closing the snapshot-to-snapshot loss window.

On-disk layout (format version 4; version-3 roots remain readable)::

    <root>/
      manifest.json            commit point: store metadata (incl. the
                               shard codec tag) + the file list of
                               generation <g> with per-file CRC32/size
                               + the WAL replay cutoff LSN
      shard-<k>.g<g>.bin       serialized compressed shard structures
      logstore.g<g>.json       live LogStore contents + tombstones
      pointers.g<g>.json       per-initial-shard update pointer tables
      wal.log                  write-ahead log (rotated at each commit)

Shards load straight from their serialized structures -- no
recompression at startup -- matching §4.1, where NodeFiles/EdgeFiles
are persisted as serialized flat files and mapped into memory.  With
``load_store(..., mode="mmap")`` that mapping is literal: each shard
file is opened once with ``mmap.mmap(..., ACCESS_READ)`` and the shard
structures are built as zero-copy views over the map, so load time is
O(#files) rather than O(bytes) and pages fault in lazily on first
query access (see ``docs/STORAGE.md``).  Shard files are streamed to
disk section-by-section at save time (:func:`save_store` never
materialises a whole shard blob), and ``verify_store`` CRC-checks
files in fixed-size chunks so audits run in constant memory.

Every step of ``save_store`` and every WAL append carries a
:mod:`repro.chaos` crash point (see :data:`SAVE_CRASH_POINTS`), so the
recovery guarantee -- *load always yields either the pre-save or the
post-save state* -- is exercised by fault-injected tests rather than
assumed.
"""

from __future__ import annotations

import json
import mmap
import os
import re
import time
import zlib
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple

from repro import chaos, obs
from repro.core.delimiters import DelimiterMap
from repro.core.errors import (
    ManifestCorruptError,
    ManifestMissingError,
    SnapshotCorruptError,
    StoreVersionConflictError,
    UnsupportedVersionError,
)
from repro.core.graph_store import ZipG
from repro.core.logstore import LogStore
from repro.core.pointers import UpdatePointerTable
from repro.core.shard import CompressedShard
from repro.succinct.serialize import SectionPayload, write_sections
from repro.core.wal import (
    WAL_FILENAME,
    WalConfig,
    WriteAheadLog,
    read_records,
    repair_torn_tail,
)

MANIFEST_VERSION = 4

#: Manifest versions :func:`load_store` accepts.  Version 3 predates
#: the pluggable shard codec: its manifests carry no ``encoding`` key
#: (read as ``"succinct"``) and its shard blobs no ``__format__``
#: section (decoded as Succinct, the only codec that existed).
_SUPPORTED_VERSIONS = (3, MANIFEST_VERSION)

MANIFEST_NAME = "manifest.json"

#: Chunk size for streaming CRC audits (:func:`verify_store`).
DEFAULT_VERIFY_CHUNK_BYTES = 1 << 20

#: Crash points fired (in order) during :func:`save_store`.  The chaos
#: suite kills the process model at each of them and asserts
#: :func:`load_store` still recovers a consistent store.
SAVE_CRASH_POINTS = (
    "save.begin",          # before any byte is written
    "save.file",           # after each data file (tag: file=<name>)
    "save.data_written",   # all data files durable, manifest not yet
    "save.manifest_tmp",   # manifest temp written, not yet renamed
    "save.committed",      # manifest renamed: snapshot is live
    "save.cleaned",        # old generations removed, WAL rotated
)

_GENERATION_FILE_RE = re.compile(
    r"^(?:shard-\d+|logstore|pointers)\.g(?P<gen>\d+)\.(?:bin|json)$"
)
_LEGACY_FILE_RE = re.compile(r"^(?:shard-\d+\.bin|logstore\.json|pointers\.json)$")


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _write_file(root: str, name: str, data: bytes, fsync: bool) -> Dict[str, int]:
    """Write one snapshot file (torn-write injectable) and fsync it."""
    path = os.path.join(root, name)
    with open(path, "wb") as handle:
        chaos.write_bytes(chaos.SITE_SAVE_WRITE, handle, data, file=name)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return {"crc32": _crc32(data), "bytes": len(data)}


class _MeteredWriter:
    """File-handle facade for streaming section writes.

    Every chunk goes through the same chaos torn-write site as
    :func:`_write_file` (so fault-injected saves can still crash
    mid-shard with only a prefix persisted) while the CRC32 and byte
    count the manifest records accumulate incrementally -- the full
    serialized blob never exists in memory.
    """

    def __init__(self, handle: IO[bytes], name: str) -> None:
        self._handle = handle
        self._name = name
        self.crc32 = 0
        self.nbytes = 0

    def write(self, data: bytes) -> int:
        chaos.write_bytes(chaos.SITE_SAVE_WRITE, self._handle, data,
                          file=self._name)
        # Only reached if the chunk landed whole; a torn write raises
        # out of chaos.write_bytes and the partial CRC is discarded.
        self.crc32 = zlib.crc32(data, self.crc32) & 0xFFFFFFFF
        self.nbytes += len(data)
        return len(data)


def _write_file_sections(
    root: str, name: str, sections: Dict[str, SectionPayload], fsync: bool
) -> Dict[str, int]:
    """Stream one snapshot file section-by-section and fsync it.

    Equivalent to ``_write_file(root, name, pack_sections(sections))``
    -- byte-identical output, same crash points -- without ever
    concatenating the payload chunks."""
    path = os.path.join(root, name)
    with open(path, "wb") as handle:
        writer = _MeteredWriter(handle, name)
        write_sections(writer, sections)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    return {"crc32": writer.crc32, "bytes": writer.nbytes}


def _fsync_dir(root: str) -> None:
    """Make the rename itself durable (POSIX: fsync the directory)."""
    try:
        fd = os.open(root, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename already issued
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_manifest(root: str) -> Optional[Dict]:
    """The committed manifest, parsed; ``None`` if none exists.

    A present-but-unparseable manifest raises ManifestCorruptError --
    the caller decides whether that is fatal (load) or not (save over
    a damaged root is refused so the operator must clean up
    explicitly)."""
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (ValueError, OSError) as exc:
        raise ManifestCorruptError(f"cannot parse {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ManifestCorruptError(f"{path}: manifest is not an object")
    return manifest


def save_store(store: ZipG, root: str, fsync: bool = True) -> None:
    """Persist ``store`` under directory ``root`` (created if needed).

    Atomicity: data files are written under a fresh generation number
    and the manifest rename is the single commit point, so a crash at
    any step leaves the previous snapshot loadable.  After commit the
    store's WAL (if attached under ``root``) is rotated -- its records
    are now covered by the snapshot -- and superseded generation files
    are removed.

    Raises :class:`StoreVersionConflictError` instead of overwriting a
    root whose committed manifest is *newer* than this build's
    :data:`MANIFEST_VERSION` (a mixed-version directory would be
    unrecoverable by either build).
    """
    os.makedirs(root, exist_ok=True)
    previous = _read_manifest(root)
    generation = 1
    if previous is not None:
        found = previous.get("version")
        if isinstance(found, int) and found > MANIFEST_VERSION:
            raise StoreVersionConflictError(
                f"store at {root} has manifest version {found}, newer than "
                f"supported version {MANIFEST_VERSION}; refusing to overwrite"
            )
        prev_gen = previous.get("generation")
        if isinstance(prev_gen, int) and prev_gen >= 1:
            generation = prev_gen + 1
    chaos.crash_point("save.begin")

    files: Dict[str, Dict[str, int]] = {}

    def emit(name: str, data: bytes) -> None:
        files[name] = _write_file(root, name, data, fsync)
        chaos.crash_point("save.file", file=name)

    for shard in store.shards:
        # Shards stream out section-by-section -- the serialized blob
        # (the dominant snapshot cost) is never materialised in memory.
        name = f"shard-{shard.shard_id}.g{generation}.bin"
        files[name] = _write_file_sections(root, name, shard.sections(), fsync)
        chaos.crash_point("save.file", file=name)
    emit(f"logstore.g{generation}.json",
         json.dumps(store.logstore.to_payload()).encode("utf-8"))
    pointer_payload = [table.to_payload() for table in store._pointer_tables]
    emit(f"pointers.g{generation}.json",
         json.dumps(pointer_payload).encode("utf-8"))
    chaos.crash_point("save.data_written")

    wal = store.wal
    manifest = {
        "version": MANIFEST_VERSION,
        "generation": generation,
        "alpha": store._alpha,
        "logstore_threshold_bytes": store._threshold,
        "num_initial_shards": store.num_initial_shards,
        "num_shards": store.num_shards,
        "freeze_count": store.freeze_count,
        "encoding": store.encoding,
        "property_ids": store.delimiters.property_ids(),
        "files": files,
        "wal_last_lsn": wal.last_lsn if isinstance(wal, WriteAheadLog) else 0,
    }
    tmp_name = MANIFEST_NAME + ".tmp"
    _write_file(root, tmp_name, json.dumps(manifest).encode("utf-8"), fsync)
    chaos.crash_point("save.manifest_tmp")
    os.replace(os.path.join(root, tmp_name), os.path.join(root, MANIFEST_NAME))
    if fsync:
        _fsync_dir(root)
    chaos.crash_point("save.committed")

    # The snapshot now covers every WAL record up to wal_last_lsn; a
    # crash before this rotate is harmless (replay skips by LSN).
    if isinstance(wal, WriteAheadLog) and os.path.dirname(
        os.path.abspath(wal.path)
    ) == os.path.abspath(root):
        wal.rotate()
    _remove_stale_files(root, generation)
    chaos.crash_point("save.cleaned")
    obs.counter("zipg_snapshot_saves_total",
                help="committed save_store snapshots").inc()


def _remove_stale_files(root: str, generation: int) -> None:
    """Drop data files from superseded generations (and the v2 legacy
    layout) after a successful commit."""
    for name in os.listdir(root):
        match = _GENERATION_FILE_RE.match(name)
        stale = (match is not None and int(match.group("gen")) != generation)
        stale = stale or _LEGACY_FILE_RE.match(name) is not None
        if stale:
            try:
                os.remove(os.path.join(root, name))
            except OSError:
                # Cleanup is advisory; a leftover stale file is ignored
                # by load_store and retried on the next save.
                continue  # zipg: ignore[ROBUST001]


def _verified_read(root: str, name: str, meta: Dict) -> bytes:
    path = os.path.join(root, name)
    if not os.path.exists(path):
        raise SnapshotCorruptError(f"snapshot file missing: {path}")
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) != meta.get("bytes") or _crc32(data) != meta.get("crc32"):
        raise SnapshotCorruptError(
            f"snapshot file torn or corrupt: {path} "
            f"({len(data)} bytes, crc {_crc32(data):08x}; manifest says "
            f"{meta.get('bytes')} bytes, crc {int(meta.get('crc32', 0)):08x})"
        )
    return data


def _mapped_view(root: str, name: str, meta: Dict) -> Tuple[memoryview, mmap.mmap]:
    """Map one snapshot file read-only; O(1) in file size.

    Only the recorded size is validated here -- the point of mmap
    loading is that payload pages fault in lazily on first query
    access, and a CRC pass would touch every page up front.  Size
    alone still catches truncation (the common torn-file shape); the
    full streaming CRC audit lives in :func:`verify_store`.  Structural
    damage inside a page surfaces as a decode error at first access,
    never as silently wrong data being trusted as a manifest match.
    """
    path = os.path.join(root, name)
    if not os.path.exists(path):
        raise SnapshotCorruptError(f"snapshot file missing: {path}")
    size = os.path.getsize(path)
    if size != meta.get("bytes") or size == 0:
        raise SnapshotCorruptError(
            f"snapshot file torn or corrupt: {path} ({size} bytes; "
            f"manifest says {meta.get('bytes')} bytes)"
        )
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    return memoryview(mapped), mapped


def load_store(
    root: str,
    wal_config: Optional[WalConfig] = None,
    attach_wal: bool = True,
    mode: str = "eager",
) -> ZipG:
    """Recover a :class:`ZipG` from ``root``.

    Recovery = last committed snapshot (manifest + checksum-verified
    data files) + replay of every WAL record past the manifest's
    cutoff LSN.  Torn WAL tails are dropped (the in-flight record of a
    crashed append); torn *snapshot* files raise
    :class:`SnapshotCorruptError` -- they cannot occur from a crash
    (the manifest only ever points at fully fsync'd files) and so
    indicate external damage that must not be silently repaired.

    ``mode`` selects how shard bytes reach memory:

    * ``"eager"`` (default): each shard file is read fully and
      CRC-verified, and the store owns private copies -- required for
      stores that will be mutated and saved again.
    * ``"mmap"``: each shard file is memory-mapped read-only and the
      shard structures are zero-copy views over the map, so load cost
      is O(#shards) regardless of shard bytes and the OS pages data in
      on demand.  Only file sizes are checked at load; run
      ``repro verify-store`` for the full CRC audit.  The store keeps
      the maps alive for its lifetime; mutations still work (they land
      in the LogStore / fresh shards), but freezes and compactions
      allocate new in-memory shards as usual.

    Non-shard files (logstore/pointers JSON, the manifest, the WAL)
    are small and always read eagerly.  With ``attach_wal`` (default)
    the recovered store continues durable logging into the same
    ``wal.log``, LSNs continuing where the log left off.
    """
    if mode not in ("eager", "mmap"):
        raise ValueError(f"unknown load mode {mode!r}; expected eager|mmap")
    manifest_path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise ManifestMissingError(f"no committed manifest under {root}")
    manifest = _read_manifest(root)
    assert manifest is not None
    version = manifest.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise UnsupportedVersionError(
            f"unsupported manifest version {version!r} "
            f"(this build reads versions {_SUPPORTED_VERSIONS})"
        )
    generation = manifest.get("generation")
    files = manifest.get("files")
    if not isinstance(generation, int) or not isinstance(files, dict):
        raise ManifestCorruptError(f"{manifest_path}: missing generation/files")
    # v3 manifests predate the pluggable codec; their shards are
    # Succinct-encoded and carry no tag.
    encoding = manifest.get("encoding", "succinct")
    if not isinstance(encoding, str):
        raise ManifestCorruptError(f"{manifest_path}: bad encoding tag")

    load_seconds = obs.histogram(
        "zipg_shard_load_seconds",
        help="wall seconds constructing each shard in load_store",
    )
    delimiters = DelimiterMap(manifest["property_ids"])
    shards: List[CompressedShard] = []
    mmaps: List[mmap.mmap] = []
    mapped_bytes = 0
    for shard_id in range(manifest["num_shards"]):
        name = f"shard-{shard_id}.g{generation}.bin"
        if name not in files:
            raise ManifestCorruptError(f"manifest lists no entry for {name}")
        started = time.perf_counter()
        if mode == "mmap":
            view, mapped = _mapped_view(root, name, files[name])
            mmaps.append(mapped)
            mapped_bytes += len(mapped)
            shards.append(CompressedShard.from_bytes(view, delimiters))
        else:
            shards.append(
                CompressedShard.from_bytes(
                    _verified_read(root, name, files[name]), delimiters
                )
            )
        load_seconds.observe(time.perf_counter() - started)

    initial = shards[: manifest["num_initial_shards"]]
    store = ZipG(delimiters, initial, manifest["alpha"],
                 manifest["logstore_threshold_bytes"], encoding=encoding)
    store.load_mode = mode
    store.mapped_bytes = mapped_bytes
    # Keepalive: every shard built in mmap mode is a web of views over
    # these maps; closing them would invalidate the store in place.
    store._mmaps = mmaps
    obs.gauge(
        "zipg_mmap_bytes",
        help="shard snapshot bytes memory-mapped rather than copied",
    ).set(float(mapped_bytes))
    # Attach the post-freeze shards (ZipG's constructor only takes the
    # initial set; freezes are replayed structurally).
    for shard in shards[manifest["num_initial_shards"]:]:
        store._shards.append(shard)
    store.freeze_count = manifest["freeze_count"]

    log_name = f"logstore.g{generation}.json"
    if log_name not in files:
        raise ManifestCorruptError(f"manifest lists no entry for {log_name}")
    log_payload = json.loads(_verified_read(root, log_name, files[log_name]))
    store._logstore = LogStore.from_payload(log_payload)

    ptr_name = f"pointers.g{generation}.json"
    if ptr_name not in files:
        raise ManifestCorruptError(f"manifest lists no entry for {ptr_name}")
    pointer_payload = json.loads(_verified_read(root, ptr_name, files[ptr_name]))
    store._pointer_tables = [
        UpdatePointerTable.from_payload(entry) for entry in pointer_payload
    ]

    # WAL replay: everything durably logged past the snapshot cutoff.
    cutoff = manifest.get("wal_last_lsn", 0)
    if not isinstance(cutoff, int):
        raise ManifestCorruptError(f"{manifest_path}: bad wal_last_lsn")
    wal_path = os.path.join(root, WAL_FILENAME)
    records, _torn = read_records(wal_path)
    replayed = 0
    for record in records:
        if record.lsn <= cutoff:
            continue
        store.apply_wal_record(record.op, record.args)
        replayed += 1
    if replayed:
        obs.counter(
            "zipg_wal_replayed_records_total",
            help="WAL records applied during load_store recovery",
        ).inc(replayed)
    obs.counter("zipg_recovery_loads_total",
                help="successful load_store recoveries").inc()

    if attach_wal:
        repair_torn_tail(wal_path)  # new appends need a clean boundary
        last = records[-1].lsn if records else cutoff
        store.attach_wal(
            WriteAheadLog(wal_path, wal_config, next_lsn=max(last, cutoff) + 1)
        )
    return store


@dataclass
class IntegrityIssue:
    """One problem :func:`verify_store` found."""

    kind: str      # "manifest-missing" | "manifest-corrupt" |
                   # "unsupported-version" | "file-corrupt" |
                   # "wal-torn-tail" | "ec-manifest-corrupt" |
                   # "fragment-corrupt"
    detail: str

    def to_payload(self) -> Dict[str, str]:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class IntegrityReport:
    """Typed result of an offline store audit (``repro verify-store``)."""

    root: str
    generation: Optional[int] = None
    files_checked: int = 0
    wal_records: int = 0
    fragments_checked: int = 0
    issues: List[IntegrityIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, kind: str, detail: str) -> None:
        self.issues.append(IntegrityIssue(kind, detail))

    def to_payload(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "ok": self.ok,
            "generation": self.generation,
            "files_checked": self.files_checked,
            "wal_records": self.wal_records,
            "fragments_checked": self.fragments_checked,
            "issues": [issue.to_payload() for issue in self.issues],
        }


def _verified_crc_stream(root: str, name: str, meta: Dict,
                         chunk_bytes: int = DEFAULT_VERIFY_CHUNK_BYTES) -> None:
    """CRC/size-check one snapshot file in fixed-size chunks.

    Same acceptance criteria as :func:`_verified_read`, but constant
    memory -- ``repro verify-store`` can audit stores larger than RAM
    without ever holding a whole file."""
    path = os.path.join(root, name)
    if not os.path.exists(path):
        raise SnapshotCorruptError(f"snapshot file missing: {path}")
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    crc = 0
    total = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc) & 0xFFFFFFFF
            total += len(chunk)
    if total != meta.get("bytes") or crc != meta.get("crc32"):
        raise SnapshotCorruptError(
            f"snapshot file torn or corrupt: {path} "
            f"({total} bytes, crc {crc:08x}; manifest says "
            f"{meta.get('bytes')} bytes, crc {int(meta.get('crc32', 0)):08x})"
        )


def verify_store(root: str, ec_root: Optional[str] = None,
                 chunk_bytes: int = DEFAULT_VERIFY_CHUNK_BYTES) -> IntegrityReport:
    """Audit a store root **offline** -- no store is built, nothing is
    repaired, nothing is mutated.

    Checks: committed manifest present and parseable at a supported
    version, every referenced data file matches its recorded CRC/size
    (streamed ``chunk_bytes`` at a time, so memory use is constant no
    matter how large the shards are), and the WAL tail is not torn.
    With ``ec_root``, also verifies the erasure-coding manifest and
    every fragment it places against the fragment CRCs.  Each failure
    becomes one typed :class:`IntegrityIssue`; operators gate on
    :attr:`IntegrityReport.ok`."""
    report = IntegrityReport(root=root)
    try:
        manifest = _read_manifest(root)
    except ManifestCorruptError as exc:
        report.add("manifest-corrupt", str(exc))
        manifest = None
    if manifest is None:
        if not report.issues:
            report.add("manifest-missing",
                       f"no committed manifest under {root}")
    else:
        version = manifest.get("version")
        if version not in _SUPPORTED_VERSIONS:
            report.add(
                "unsupported-version",
                f"manifest version {version!r}; this build reads "
                f"{_SUPPORTED_VERSIONS}",
            )
        generation = manifest.get("generation")
        files = manifest.get("files")
        if isinstance(generation, int):
            report.generation = generation
        if not isinstance(files, dict):
            report.add("manifest-corrupt",
                       f"{root}: manifest lists no files object")
            files = {}
        for name in sorted(files):
            try:
                _verified_crc_stream(root, name, files[name], chunk_bytes)
            except SnapshotCorruptError as exc:
                report.add("file-corrupt", str(exc))
            report.files_checked += 1
    records, torn = read_records(os.path.join(root, WAL_FILENAME))
    report.wal_records = len(records)
    if torn:
        report.add(
            "wal-torn-tail",
            f"{os.path.join(root, WAL_FILENAME)}: trailing partial record "
            f"(in-flight append at crash; load_store would drop it)",
        )
    if ec_root is not None:
        _verify_ec_root(ec_root, report)
    return report


def _verify_ec_root(ec_root: str, report: IntegrityReport) -> None:
    """Fragment-layer half of :func:`verify_store`."""
    # Local import: persistence must stay importable below the ec
    # package (which reads snapshots through this module's helpers).
    from repro.core.errors import FragmentCorruptError, RecoveryError
    from repro.ec.striping import (
        EC_MANIFEST_NAME,
        ECManifest,
        FragmentStore,
        server_store_root,
    )

    try:
        manifest = ECManifest.load(os.path.join(ec_root, EC_MANIFEST_NAME))
    except RecoveryError as exc:
        report.add("ec-manifest-corrupt", str(exc))
        return
    for name in sorted(manifest.files):
        stripe = manifest.files[name]
        for index, info in enumerate(stripe.fragments):
            store = FragmentStore(server_store_root(ec_root, info.server))
            try:
                store.read(name, index, info.crc32, info.bytes)
            except FragmentCorruptError as exc:
                report.add("fragment-corrupt", str(exc))
            report.fragments_checked += 1


def attach_wal(store: ZipG, root: str,
               config: Optional[WalConfig] = None) -> WriteAheadLog:
    """Arm ``store`` with a write-ahead log under ``root``.

    Continues LSNs from any existing ``wal.log`` so a later
    :func:`load_store` replays exactly the un-snapshotted suffix."""
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, WAL_FILENAME)
    repair_torn_tail(path)
    records, _torn = read_records(path)
    manifest = _read_manifest(root)
    cutoff = 0
    if manifest is not None and isinstance(manifest.get("wal_last_lsn"), int):
        cutoff = manifest["wal_last_lsn"]
    last = records[-1].lsn if records else 0
    wal = WriteAheadLog(path, config, next_lsn=max(last, cutoff) + 1)
    store.attach_wal(wal)
    return wal
